package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repliflow/internal/core"
)

// TestParallelEngineSolveIdentity: engine solves with intra-solve
// parallelism — including the donation path, where a solve claims idle
// pool slots and rewrites its own worker count — return exactly the
// serial solutions. Separate engines per setting keep the caches from
// answering for the path under test.
func TestParallelEngineSolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ctx := context.Background()
	problems := make([]core.Problem, 25)
	for i := range problems {
		problems[i] = randomProblem(rng)
	}
	serial := New(1)
	for _, par := range []int{2, -1, -4} {
		e := New(4)
		for i, pr := range problems {
			want, err := serial.Solve(ctx, pr, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Solve(ctx, pr, core.Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("problem %d par=%d: engine parallel solve diverges\n got %+v\nwant %+v\nfor %+v",
					i, par, got, want, pr)
			}
		}
	}
}

// TestParallelEngineBatchIdentity: a batch solved with intra-solve
// parallelism enabled — pool workers and donated slots competing for the
// same semaphore — returns exactly the serial batch's solutions.
func TestParallelEngineBatchIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	ctx := context.Background()
	problems := make([]core.Problem, 40)
	for i := range problems {
		problems[i] = randomProblem(rng)
	}
	want, err := SolveBatch(ctx, problems, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(4).SolveBatch(ctx, problems, core.Options{Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel batch diverges from serial batch")
	}
}

// TestParallelDonationAccounting: donate must never hand out more
// slots than the pool holds, must resolve the rewritten Parallelism to
// the claimed budget, and releaseExtra must return every claimed slot.
func TestParallelDonationAccounting(t *testing.T) {
	e := New(3)
	// A real solve holds its main slot before donating (solveVia); the
	// test mirrors that so the claimed extras measure the free pool.
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	// Serial solves pass through untouched and claim nothing.
	for _, par := range []int{0, 1} {
		opts, extra := e.donate(core.Options{Parallelism: par})
		if extra != 0 || opts.Parallelism != par {
			t.Fatalf("donate(par=%d) = (par=%d, extra=%d), want passthrough", par, opts.Parallelism, extra)
		}
	}

	// An explicit request claims up to want-1 extras from the free pool:
	// main slot + 2 extras = the whole 3-pool, never more.
	opts, extra := e.donate(core.Options{Parallelism: 8})
	if extra != 2 || opts.Parallelism != 3 {
		t.Fatalf("donate(par=8) on an idle 3-pool = (par=%d, extra=%d), want (3, 2)", opts.Parallelism, extra)
	}
	// The pool is now full: further requests degrade to serial instead
	// of oversubscribing.
	opts2, extra2 := e.donate(core.Options{Parallelism: 8})
	if extra2 != 0 || opts2.Parallelism != 1 {
		t.Fatalf("donate(par=8) on a full pool = (par=%d, extra=%d), want (1, 0)", opts2.Parallelism, extra2)
	}
	opts3, extra3 := e.donate(core.Options{Parallelism: -5})
	if extra3 != 0 || opts3.Parallelism != 1 {
		t.Fatalf("donate(par=-5) on a full pool = (par=%d, extra=%d), want serial fallback (1, 0)", opts3.Parallelism, extra3)
	}
	e.releaseExtra(extra)

	// Auto mode resolves -1 to the pool size (capped by GOMAXPROCS) and
	// the released slots are claimable again. With extras the rewrite
	// stays negative (auto, so the crossover heuristic still applies);
	// without extras it pins 1 — a -1 passthrough would wrongly mean
	// GOMAXPROCS inside the solve.
	opts4, extra4 := e.donate(core.Options{Parallelism: -1})
	switch {
	case extra4 == 0 && opts4.Parallelism != 1:
		t.Fatalf("donate(par=-1) with no extras rewrote to %d, want 1", opts4.Parallelism)
	case extra4 > 0 && opts4.Parallelism != -(1+extra4):
		t.Fatalf("donate(par=-1) claimed %d extras but rewrote to %d, want %d", extra4, opts4.Parallelism, -(1 + extra4))
	}
	e.releaseExtra(extra4)

	// After every release the free pool is whole again (2 slots beside
	// the held main slot).
	_, extra5 := e.donate(core.Options{Parallelism: 99})
	if extra5 != 2 {
		t.Fatalf("pool leaked slots: claimed %d extras after releases, want 2", extra5)
	}
	e.releaseExtra(extra5)
}
