package engine

import (
	"context"
	"sync"
	"testing"

	"repliflow/internal/core"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// fakeResultStore is an in-memory ResultStore that counts traffic.
type fakeResultStore struct {
	mu     sync.Mutex
	sols   map[string]core.Solution
	loads  int
	hits   int
	stores int
}

func newFakeResultStore() *fakeResultStore {
	return &fakeResultStore{sols: make(map[string]core.Solution)}
}

func (f *fakeResultStore) Load(key string) (core.Solution, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	sol, ok := f.sols[key]
	if ok {
		f.hits++
	}
	return sol, ok
}

func (f *fakeResultStore) Store(key string, sol core.Solution) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.sols[key] = sol
}

// TestResultStoreRoundTrip: a hard solve writes its solution through to
// the store, and a fresh engine sharing the store answers the same
// fingerprint from it without running the solver.
func TestResultStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	pr := hardProblem(11)
	rs := newFakeResultStore()

	e1 := New(2)
	e1.SetResultStore(rs)
	want, err := e1.Solve(ctx, pr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.stores != 1 || rs.hits != 0 {
		t.Fatalf("after cold solve: stores=%d hits=%d, want 1/0", rs.stores, rs.hits)
	}

	// A fresh engine has a cold memoization cache but a warm store.
	e2 := New(2)
	e2.SetResultStore(rs)
	got, err := e2.Solve(ctx, pr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.hits != 1 {
		t.Fatalf("second engine did not hit the store: %+v", rs)
	}
	if _, misses := e2.CacheStats(); misses != 0 {
		t.Fatalf("store hit still ran a solve: misses=%d", misses)
	}
	if got.Cost != want.Cost || got.Exact != want.Exact {
		t.Fatalf("stored solution differs: got %+v want %+v", got, want)
	}

	// The adopted solution lands in e2's own cache: a repeat is a cache
	// hit, not another store round trip.
	loads := rs.loads
	if _, err := e2.Solve(ctx, pr, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if rs.loads != loads {
		t.Fatalf("cached fingerprint went back to the store (loads %d -> %d)", loads, rs.loads)
	}
}

// TestResultStoreSkipsPolynomialCells: trivially re-derivable solves
// never touch the store in either direction.
func TestResultStoreSkipsPolynomialCells(t *testing.T) {
	pipe := workflow.HomogeneousPipeline(4, 2)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), Objective: core.MinLatency}
	if !core.ClassifyCell(core.CellKeyOf(pr)).Complexity.Polynomial() {
		t.Fatal("test instance is not polynomial")
	}
	rs := newFakeResultStore()
	e := New(2)
	e.SetResultStore(rs)
	if _, err := e.Solve(context.Background(), pr, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if rs.loads != 0 || rs.stores != 0 {
		t.Fatalf("polynomial solve touched the store: %+v", rs)
	}
}
