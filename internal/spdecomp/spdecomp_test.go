package spdecomp

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func mustSP(t *testing.T, steps ...workflow.SPStep) workflow.SP {
	t.Helper()
	g := workflow.NewSP(steps...)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid test graph: %v", err)
	}
	return g
}

func TestReduceChain(t *testing.T) {
	g := mustSP(t,
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"b"}},
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
	)
	red, ok := Reduce(g)
	if !ok || red.Kind != workflow.KindPipeline {
		t.Fatalf("Reduce = %+v, %v; want pipeline", red, ok)
	}
	want := []float64{1, 2, 3}
	for i, w := range red.Pipeline.Weights {
		if w != want[i] {
			t.Fatalf("pipeline weights = %v, want %v", red.Pipeline.Weights, want)
		}
	}
	if red.Order[0] != 1 || red.Order[1] != 2 || red.Order[2] != 0 {
		t.Fatalf("Order = %v, want [1 2 0]", red.Order)
	}
}

func TestReduceForkAndForkJoin(t *testing.T) {
	fork := mustSP(t,
		workflow.SPStep{Name: "root", Weight: 5},
		workflow.SPStep{Name: "l1", Weight: 1, After: []string{"root"}},
		workflow.SPStep{Name: "l2", Weight: 2, After: []string{"root"}},
	)
	red, ok := Reduce(fork)
	if !ok || red.Kind != workflow.KindFork {
		t.Fatalf("fork Reduce = %+v, %v", red, ok)
	}
	if red.Fork.Root != 5 || red.Fork.Weights[0] != 1 || red.Fork.Weights[1] != 2 {
		t.Fatalf("fork = %+v", *red.Fork)
	}

	fj := mustSP(t,
		workflow.SPStep{Name: "root", Weight: 5},
		workflow.SPStep{Name: "l1", Weight: 1, After: []string{"root"}},
		workflow.SPStep{Name: "l2", Weight: 2, After: []string{"root"}},
		workflow.SPStep{Name: "join", Weight: 4, After: []string{"l1", "l2"}},
	)
	red, ok = Reduce(fj)
	if !ok || red.Kind != workflow.KindForkJoin {
		t.Fatalf("fork-join Reduce = %+v, %v", red, ok)
	}
	if red.ForkJoin.Root != 5 || red.ForkJoin.Join != 4 {
		t.Fatalf("fork-join = %+v", *red.ForkJoin)
	}
	// Canonical order: root, leaves, join.
	if got, want := red.Order, []int{0, 1, 2, 3}; !equalInts(got, want) {
		t.Fatalf("Order = %v, want %v", got, want)
	}
}

func TestReduceIrreducible(t *testing.T) {
	// Diamond with an extra chord: a -> {b, c} -> d, plus b -> c makes the
	// inner pair ordered, so the graph is neither a chain nor a fork(-join).
	g := mustSP(t,
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"a", "b"}},
		workflow.SPStep{Name: "d", Weight: 1, After: []string{"b", "c"}},
	)
	if red, ok := Reduce(g); ok {
		t.Fatalf("Reduce matched %v on an irreducible DAG", red.Kind)
	}
	// Plain diamond is a fork-join.
	diamond := mustSP(t,
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"a"}},
		workflow.SPStep{Name: "d", Weight: 1, After: []string{"b", "c"}},
	)
	if red, ok := Reduce(diamond); !ok || red.Kind != workflow.KindForkJoin {
		t.Fatalf("diamond Reduce = %v, %v; want fork-join", red.Kind, ok)
	}
	// Two-step chain reduces as a pipeline, not a one-leaf fork.
	two := mustSP(t,
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
	)
	if red, ok := Reduce(two); !ok || red.Kind != workflow.KindPipeline {
		t.Fatalf("two-step Reduce = %v, %v; want pipeline", red.Kind, ok)
	}
}

// wide returns an irreducible 6-step DAG used across the solver tests.
func wide(t *testing.T) workflow.SP {
	return mustSP(t,
		workflow.SPStep{Name: "in", Weight: 2},
		workflow.SPStep{Name: "x", Weight: 4, After: []string{"in"}},
		workflow.SPStep{Name: "y", Weight: 3, After: []string{"in"}},
		workflow.SPStep{Name: "xy", Weight: 5, After: []string{"x", "y"}},
		workflow.SPStep{Name: "z", Weight: 1, After: []string{"x"}},
		workflow.SPStep{Name: "out", Weight: 2, After: []string{"xy", "z"}},
	)
}

func TestEvalHandComputed(t *testing.T) {
	// a(2) -> b(4), a -> c(6), {b,c} -> d(2) on speeds {2, 1}.
	g := mustSP(t,
		workflow.SPStep{Name: "a", Weight: 2},
		workflow.SPStep{Name: "b", Weight: 4, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 6, After: []string{"a"}},
		workflow.SPStep{Name: "d", Weight: 2, After: []string{"b", "c"}},
	)
	pl := platform.New(2, 1)
	blocks := []mapping.SPBlock{
		{Proc: 0, Steps: []int{0, 2, 3}}, // a, c, d on the fast processor
		{Proc: 1, Steps: []int{1}},       // b on the slow one
	}
	c, err := Eval(g, pl, blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Loads: P0 = 10/2 = 5, P1 = 4/1 = 4 -> period 5.
	if !numeric.Eq(c.Period, 5) {
		t.Errorf("period = %v, want 5", c.Period)
	}
	// Schedule: a on P0 [0,1); b on P1 [1,5); c on P0 [1,4); d waits for b
	// -> starts 5, runs 1 -> latency 6.
	if !numeric.Eq(c.Latency, 6) {
		t.Errorf("latency = %v, want 6", c.Latency)
	}
}

func TestEvalRejectsBadBlocks(t *testing.T) {
	g := wide(t)
	pl := platform.New(2, 1)
	cases := [][]mapping.SPBlock{
		nil,
		{{Proc: 0, Steps: []int{0, 1, 2, 3, 4}}}, // missing step
		{{Proc: 0, Steps: []int{0, 1, 2, 3, 4, 5}}, {Proc: 0, Steps: []int{0}}}, // dup proc+step
		{{Proc: 7, Steps: []int{0, 1, 2, 3, 4, 5}}},                             // proc range
		{{Proc: 0, Steps: []int{0, 1, 2, 3, 4, 5}}, {Proc: 1, Steps: nil}},      // empty block
	}
	for i, blocks := range cases {
		if _, err := Eval(g, pl, blocks); err == nil {
			t.Errorf("case %d: Eval accepted invalid blocks", i)
		}
	}
}

func TestExhaustiveBeatsHeuristicsAndRespectsBounds(t *testing.T) {
	g := wide(t)
	pl := platform.New(3, 2, 1)
	perLB, latLB := Bounds(g, pl)
	for _, goal := range []Goal{{}, {MinimizeLatency: true}} {
		blocks, cost, ok, err := Exhaustive(context.Background(), g, pl, goal)
		if err != nil || !ok {
			t.Fatalf("Exhaustive: %v ok=%v", err, ok)
		}
		if _, err := Eval(g, pl, blocks); err != nil {
			t.Fatalf("Exhaustive returned invalid blocks: %v", err)
		}
		if numeric.Less(cost.Period, perLB) || numeric.Less(cost.Latency, latLB) {
			t.Errorf("cost %v beats certified bounds (%v, %v)", cost, perLB, latLB)
		}
		for _, cand := range Heuristics(g, pl) {
			if goal.Better(cand.Cost, cost) {
				t.Errorf("heuristic %v beats exhaustive %v under %+v", cand.Cost, cost, goal)
			}
		}
	}
}

func TestExhaustiveDeterministic(t *testing.T) {
	g := wide(t)
	pl := platform.New(2, 2, 1)
	first, c1, _, err := Exhaustive(context.Background(), g, pl, Goal{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, c2, _, err := Exhaustive(context.Background(), g, pl, Goal{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameBlocks(first, again) || c1 != c2 {
			t.Fatalf("non-deterministic exhaustive: %v (%v) vs %v (%v)", first, c1, again, c2)
		}
	}
}

func TestExhaustiveInfeasibleCaps(t *testing.T) {
	g := wide(t)
	pl := platform.New(1)
	_, _, ok, err := Exhaustive(context.Background(), g, pl, Goal{PeriodCap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("period cap 0.5 should be infeasible on a speed-1 processor")
	}
}

func TestExhaustiveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workflow.RandomSP(rng, 9, 9, 4, 3)
	pl := platform.Random(rng, 6, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := Exhaustive(ctx, g, pl, Goal{}); err == nil {
		t.Fatal("cancelled exhaustive returned nil error")
	}
}

func TestHeuristicsValidOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		g := workflow.RandomSP(rng, 1+rng.Intn(10), 9, 4, 3)
		pl := platform.Random(rng, 1+rng.Intn(5), 5)
		cands := Heuristics(g, pl)
		if len(cands) == 0 {
			t.Fatalf("trial %d: no heuristic candidate", trial)
		}
		perLB, latLB := Bounds(g, pl)
		for _, c := range cands {
			got, err := Eval(g, pl, c.Blocks)
			if err != nil {
				t.Fatalf("trial %d: invalid heuristic blocks: %v\n%s", trial, err, g.Render())
			}
			if got != c.Cost {
				t.Fatalf("trial %d: candidate cost %v, Eval says %v", trial, c.Cost, got)
			}
			if numeric.Less(c.Cost.Period, perLB) || numeric.Less(c.Cost.Latency, latLB) {
				t.Fatalf("trial %d: heuristic cost %v beats bounds (%v, %v)", trial, c.Cost, perLB, latLB)
			}
		}
	}
}

func TestBudgetedImprovesOrMatchesSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := workflow.RandomSP(rng, 10, 9, 4, 3)
	pl := platform.Random(rng, 4, 5)
	goal := Goal{}
	seedBest, _ := Best(Heuristics(g, pl), goal)
	blocks, cost, iters, feasible, err := Budgeted(context.Background(), g, pl, goal, 42, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible {
		t.Fatal("unbounded goal must be feasible")
	}
	if iters <= 0 {
		t.Fatalf("iters = %d, want > 0", iters)
	}
	if _, err := Eval(g, pl, blocks); err != nil {
		t.Fatalf("budgeted blocks invalid: %v", err)
	}
	if goal.Better(seedBest.Cost, cost) {
		t.Fatalf("budgeted %v worse than its own seed %v", cost, seedBest.Cost)
	}
	perLB, _ := Bounds(g, pl)
	if numeric.Less(cost.Period, perLB) {
		t.Fatalf("budgeted period %v beats bound %v", cost.Period, perLB)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
