package spdecomp

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Byte-identity corpora for the prepared and sharded SP block search.
// Replay diffs recorded costs with ==, so costs are compared exactly and
// blocks with reflect.DeepEqual: memo hits, scratch reuse, and the
// restricted-growth sharded scan must all reproduce the serial one-shot
// result bit for bit.

func identityGoals(rng *rand.Rand) []Goal {
	return []Goal{
		{},
		{MinimizeLatency: true},
		{PeriodCap: float64(2 + rng.Intn(9))},
		{MinimizeLatency: true, LatencyCap: float64(5 + rng.Intn(20))},
	}
}

// TestSPParallelSerialIdentity: the sharded block search must be
// byte-identical to the serial scan on every goal, at every worker count.
func TestSPParallelSerialIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		g := workflow.RandomSP(rng, 1+rng.Intn(8), 9, 4, 3)
		pl := platform.Random(rng, 2+rng.Intn(3), 5)
		for _, goal := range identityGoals(rng) {
			serial, err := NewPrepared(g, pl)
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewPrepared(g, pl)
			if err != nil {
				t.Fatal(err)
			}
			par.SetParallelism(2 + rng.Intn(3))
			sb, sc, sok, err := serial.Exhaustive(context.Background(), goal)
			if err != nil {
				t.Fatal(err)
			}
			pb, pc, pok, err := par.Exhaustive(context.Background(), goal)
			if err != nil {
				t.Fatal(err)
			}
			if sok != pok || sc != pc || !reflect.DeepEqual(sb, pb) {
				t.Fatalf("trial %d goal %+v: parallel diverges: %v %v %v vs %v %v %v\n%s",
					trial, goal, pb, pc, pok, sb, sc, sok, g.Render())
			}
		}
	}
}

// TestSPPreparedIdentity: prepared solves — including memo hits on the
// second pass and the cached heuristic candidate set — must equal fresh
// one-shot Exhaustive calls.
func TestSPPreparedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 25; trial++ {
		g := workflow.RandomSP(rng, 1+rng.Intn(8), 9, 4, 3)
		pl := platform.Random(rng, 2+rng.Intn(3), 5)
		pp, err := NewPrepared(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		goals := identityGoals(rng)
		for pass := 0; pass < 2; pass++ {
			for _, goal := range goals {
				gb, gc, gok, err := pp.Exhaustive(context.Background(), goal)
				if err != nil {
					t.Fatal(err)
				}
				wb, wc, wok, err := Exhaustive(context.Background(), g, pl, goal)
				if err != nil {
					t.Fatal(err)
				}
				if gok != wok || gc != wc || !reflect.DeepEqual(gb, wb) {
					t.Fatalf("trial %d pass %d goal %+v: prepared diverges: %v %v %v vs %v %v %v",
						trial, pass, goal, gb, gc, gok, wb, wc, wok)
				}
			}
		}
	}
}

// TestSPPreparedHeuristicIdentity: the cached heuristic candidate set must
// pick the same winner as a fresh Heuristics scan, on both passes.
func TestSPPreparedHeuristicIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		g := workflow.RandomSP(rng, 1+rng.Intn(10), 9, 4, 3)
		pl := platform.Random(rng, 1+rng.Intn(5), 5)
		pp, err := NewPrepared(g, pl)
		if err != nil {
			t.Fatal(err)
		}
		for _, goal := range identityGoals(rng) {
			want, wantOK := Best(Heuristics(g, pl), goal)
			for pass := 0; pass < 2; pass++ {
				got, ok := pp.BestHeuristic(goal)
				if ok != wantOK {
					t.Fatalf("trial %d goal %+v: ok=%v want %v", trial, goal, ok, wantOK)
				}
				if !ok {
					continue
				}
				if got.Cost != want.Cost || !reflect.DeepEqual(got.Blocks, want.Blocks) {
					t.Fatalf("trial %d pass %d goal %+v: heuristic diverges: %v %v vs %v %v",
						trial, pass, goal, got.Blocks, got.Cost, want.Blocks, want.Cost)
				}
			}
		}
	}
}
