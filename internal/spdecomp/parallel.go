package spdecomp

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repliflow/internal/incumbent"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
)

// Partitioned exhaustive block search. The restricted-growth enumeration
// of Exhaustive is sharded by its assignment prefix: the first k steps'
// block identifiers, with k grown until the shard count gives every
// worker several shards to claim (absorbing the skew between subtree
// sizes). Workers claim shards in index order from an atomic counter and
// share a monotone incumbent.Bound, so an improvement found in one shard
// prunes every other immediately; a shard that reaches the certified
// Bounds lower bound publishes its index and later shards are skipped
// outright.
//
// Determinism contract: shard index order equals the serial visit order,
// each shard applies the serial install rule, and the fold walks shards
// in index order with that same rule. The shared bound only discards
// candidates strictly-beyond-tolerance worse than an achieved feasible
// value, and the lower-bound cutoff only skips shards whose candidates
// could at best tie an earlier incumbent — ties lose to the earlier
// shard in the fold. The parallel result is therefore byte-identical to
// the serial scan regardless of worker count or timing.

// spShardTarget is the number of shards aimed at per worker; more shards
// mean better load balance, fewer mean less prefix overhead.
const spShardTarget = 8

// spShard is one assignment prefix: the block identifiers of the first
// len(prefix) steps and the number of blocks they open.
type spShard struct {
	prefix []int
	blocks int
}

// spShards enumerates the restricted-growth prefixes of length k in the
// serial enumeration order.
func spShards(k, p int) []spShard {
	var out []spShard
	prefix := make([]int, k)
	var rec func(s, blocks int)
	rec = func(s, blocks int) {
		if s == k {
			out = append(out, spShard{prefix: append([]int(nil), prefix...), blocks: blocks})
			return
		}
		limit := blocks
		if blocks < p {
			limit = blocks + 1
		}
		for b := 0; b < limit; b++ {
			prefix[s] = b
			nb := blocks
			if b == blocks {
				nb = blocks + 1
			}
			rec(s+1, nb)
		}
	}
	rec(0, 0)
	return out
}

// spShardPrefixes grows the prefix length until the shard count reaches
// target (or the prefix covers every step).
func spShardPrefixes(n, p, target int) []spShard {
	shards := spShards(1, p)
	for k := 2; len(shards) < target && k <= n; k++ {
		shards = spShards(k, p)
	}
	return shards
}

// spShardResult is one shard-local best under the serial install rule.
type spShardResult struct {
	blocks []mapping.SPBlock
	c      mapping.Cost
	found  bool
}

func (pp *Prepared) exhaustivePar(ctx context.Context, goal Goal) ([]mapping.SPBlock, mapping.Cost, bool, error) {
	n, p := len(pp.g.Steps), pp.pl.Processors()
	shards := spShardPrefixes(n, p, pp.par*spShardTarget)
	if len(shards) < 2 {
		return pp.exhaustiveSerial(ctx, goal)
	}
	workers := pp.par
	if workers > len(shards) {
		workers = len(shards)
	}
	lb := pp.lowerBound(goal)
	results := make([]spShardResult, len(shards))
	errs := make([]error, workers)
	bound := incumbent.NewBound()
	var next atomic.Int64
	var lbShard atomic.Int64
	lbShard.Store(math.MaxInt64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := newEvalState(pp.g, pp.pl)
			if err != nil {
				errs[w] = err
				return
			}
			assign := make([]int, n)
			blockProc := make([]int, n)
			usedProc := make([]bool, p)
			iterSince := 0
			var local spShardResult
			var shardIdx int
			var procs func(k, blocks int) error
			procs = func(k, blocks int) error {
				if k == blocks {
					for s := 0; s < n; s++ {
						st.procOf[s] = blockProc[assign[s]]
					}
					c := st.costOf()
					if !goal.Feasible(c) {
						return nil
					}
					if numeric.Greater(goal.Value(c), bound.Load()) {
						return nil
					}
					if !local.found || goal.Better(c, local.c) {
						local.blocks, local.c, local.found = st.blocks(), c, true
						v := goal.Value(c)
						bound.Tighten(v)
						if v <= lb {
							// Publish: no later shard can strictly improve.
							for {
								cur := lbShard.Load()
								if cur <= int64(shardIdx) || lbShard.CompareAndSwap(cur, int64(shardIdx)) {
									break
								}
							}
							return errStopEnum
						}
					}
					return nil
				}
				for q := 0; q < p; q++ {
					if usedProc[q] {
						continue
					}
					usedProc[q] = true
					blockProc[k] = q
					if err := procs(k+1, blocks); err != nil {
						return err
					}
					usedProc[q] = false
				}
				return nil
			}
			var parts func(s, blocks int) error
			parts = func(s, blocks int) error {
				if s == n {
					iterSince++
					if iterSince >= 64 {
						iterSince = 0
						if err := ctx.Err(); err != nil {
							return err
						}
					}
					return procs(0, blocks)
				}
				limit := blocks
				if blocks < p {
					limit = blocks + 1
				}
				for b := 0; b < limit; b++ {
					assign[s] = b
					nb := blocks
					if b == blocks {
						nb = blocks + 1
					}
					if err := parts(s+1, nb); err != nil {
						return err
					}
				}
				return nil
			}
			for {
				idx := int(next.Add(1) - 1)
				if idx >= len(shards) {
					return
				}
				if int64(idx) > lbShard.Load() {
					continue
				}
				shardIdx = idx
				sh := shards[idx]
				copy(assign, sh.prefix)
				local = spShardResult{}
				err := parts(len(sh.prefix), sh.blocks)
				if err != nil && err != errStopEnum {
					errs[w] = err
					return
				}
				if err == errStopEnum {
					for q := range usedProc {
						usedProc[q] = false
					}
				}
				results[idx] = local
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, mapping.Cost{}, false, err
		}
	}
	var (
		best     []mapping.SPBlock
		bestCost mapping.Cost
		found    bool
	)
	for i := range shards {
		r := results[i]
		if !r.found {
			continue
		}
		if !found || goal.Better(r.c, bestCost) {
			best, bestCost, found = r.blocks, r.c, true
		}
		if goal.Value(bestCost) <= lb {
			break
		}
	}
	return best, bestCost, found, nil
}
