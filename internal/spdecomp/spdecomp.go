// Package spdecomp decomposes series-parallel DAG workflows (workflow.SP)
// for the mapping problem of Benoit & Robert (RR-6308).
//
// The decomposer works in two tiers:
//
//   - Reduce recognises SP graphs that collapse onto one of the three
//     graph shapes the paper solves — a chain is a pipeline (Figure 1), a
//     root whose successors are all sinks is a fork (Figure 2), and adding
//     a common sink makes a fork-join (Section 6.3). Reduced instances
//     inherit the exact Table 1 solvers unchanged, so the decomposition is
//     exact by construction.
//   - Irreducible DAGs are solved in the block model: the steps are
//     partitioned into blocks, each block runs on one distinct processor,
//     the period is the largest block weight over speed, and the latency
//     is the makespan of the canonical list schedule. Exhaustive search
//     covers small instances; Heuristics and the budget-bounded local
//     search of Budgeted cover the rest, with Bounds supplying certified
//     lower bounds for anytime gaps.
package spdecomp

import (
	"sort"

	"repliflow/internal/workflow"
)

// Reduction describes an exact collapse of an SP graph onto a legacy
// shape. Order maps canonical stage positions of the reduced graph
// (pipeline stage order; fork root then leaves; fork-join root, leaves,
// join) back to step indices of the SP graph.
type Reduction struct {
	Kind     workflow.Kind
	Pipeline *workflow.Pipeline
	Fork     *workflow.Fork
	ForkJoin *workflow.ForkJoin
	Order    []int
}

// Reduce returns the exact legacy reduction of g, if one exists. The
// graph must be valid. Chains win over the degenerate two-step fork
// reading, matching the paper's pipeline-first presentation.
func Reduce(g workflow.SP) (Reduction, bool) {
	preds, succs := g.Preds(), g.Succs()
	if order, ok := chainOrder(preds, succs); ok {
		ws := make([]float64, len(order))
		for i, s := range order {
			ws[i] = g.Steps[s].Weight
		}
		p := workflow.NewPipeline(ws...)
		return Reduction{Kind: workflow.KindPipeline, Pipeline: &p, Order: order}, true
	}
	if root, leaves, ok := forkShape(preds, succs); ok {
		ws := make([]float64, len(leaves))
		for i, s := range leaves {
			ws[i] = g.Steps[s].Weight
		}
		f := workflow.NewFork(g.Steps[root].Weight, ws...)
		return Reduction{Kind: workflow.KindFork, Fork: &f, Order: append([]int{root}, leaves...)}, true
	}
	if root, leaves, join, ok := forkJoinShape(preds, succs); ok {
		ws := make([]float64, len(leaves))
		for i, s := range leaves {
			ws[i] = g.Steps[s].Weight
		}
		fj := workflow.NewForkJoin(g.Steps[root].Weight, g.Steps[join].Weight, ws...)
		order := append([]int{root}, leaves...)
		order = append(order, join)
		return Reduction{Kind: workflow.KindForkJoin, ForkJoin: &fj, Order: order}, true
	}
	return Reduction{}, false
}

// chainOrder reports whether the DAG is a single path and returns it.
func chainOrder(preds, succs [][]int) ([]int, bool) {
	n := len(preds)
	start := -1
	for i := 0; i < n; i++ {
		if len(preds[i]) > 1 || len(succs[i]) > 1 {
			return nil, false
		}
		if len(preds[i]) == 0 {
			if start >= 0 {
				return nil, false
			}
			start = i
		}
	}
	order := make([]int, 0, n)
	for v := start; ; {
		order = append(order, v)
		if len(succs[v]) == 0 {
			break
		}
		v = succs[v][0]
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// forkShape matches a root whose successors are all the remaining steps,
// each a sink depending only on the root.
func forkShape(preds, succs [][]int) (root int, leaves []int, ok bool) {
	n := len(preds)
	if n < 2 {
		return 0, nil, false
	}
	root = -1
	for i := 0; i < n; i++ {
		if len(preds[i]) == 0 {
			if root >= 0 {
				return 0, nil, false
			}
			root = i
		}
	}
	if root < 0 || len(succs[root]) != n-1 {
		return 0, nil, false
	}
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		if len(preds[i]) != 1 || preds[i][0] != root || len(succs[i]) != 0 {
			return 0, nil, false
		}
		leaves = append(leaves, i)
	}
	sort.Ints(leaves)
	return root, leaves, true
}

// forkJoinShape matches root -> leaves -> join with no direct root-join
// edge and at least one leaf.
func forkJoinShape(preds, succs [][]int) (root int, leaves []int, join int, ok bool) {
	n := len(preds)
	if n < 3 {
		return 0, nil, 0, false
	}
	root, join = -1, -1
	for i := 0; i < n; i++ {
		if len(preds[i]) == 0 {
			if root >= 0 {
				return 0, nil, 0, false
			}
			root = i
		}
		if len(succs[i]) == 0 {
			if join >= 0 {
				return 0, nil, 0, false
			}
			join = i
		}
	}
	if root < 0 || join < 0 || root == join {
		return 0, nil, 0, false
	}
	if len(succs[root]) != n-2 || len(preds[join]) != n-2 {
		return 0, nil, 0, false
	}
	for i := 0; i < n; i++ {
		if i == root || i == join {
			continue
		}
		if len(preds[i]) != 1 || preds[i][0] != root || len(succs[i]) != 1 || succs[i][0] != join {
			return 0, nil, 0, false
		}
		leaves = append(leaves, i)
	}
	sort.Ints(leaves)
	return root, leaves, join, true
}

// nodeKind labels the nodes of the SP decomposition tree.
type nodeKind int

const (
	leafNode nodeKind = iota
	seriesNode
	parallelNode
	// atomNode is an irreducible sub-DAG: connected, with no cut step.
	atomNode
)

// node is a node of the SP decomposition tree built by buildTree. Steps
// holds the step indices covered by the subtree.
type node struct {
	kind     nodeKind
	steps    []int
	children []*node
}

// buildTree recursively decomposes the DAG into series compositions (at
// cut steps every path passes through), parallel compositions (weakly
// connected components) and irreducible atoms. The tree guides the
// recursive allocation heuristic; exactness never depends on it.
func buildTree(g workflow.SP) *node {
	preds, succs := g.Preds(), g.Succs()
	all := make([]int, len(g.Steps))
	for i := range all {
		all[i] = i
	}
	return decompose(all, preds, succs)
}

func decompose(set []int, preds, succs [][]int) *node {
	if len(set) == 1 {
		return &node{kind: leafNode, steps: set}
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	// Parallel split: weakly connected components of the induced subgraph.
	comps := components(set, in, preds, succs)
	if len(comps) > 1 {
		n := &node{kind: parallelNode, steps: set}
		for _, c := range comps {
			n.children = append(n.children, decompose(c, preds, succs))
		}
		return n
	}
	// Series split: cut steps comparable (ancestor or descendant) to every
	// other step partition the set into sequential segments.
	desc := reachability(set, in, succs)
	anc := reachability(set, in, preds)
	var cuts []int
	for _, v := range set {
		comparable := true
		for _, u := range set {
			if u == v {
				continue
			}
			if !desc[v][u] && !anc[v][u] {
				comparable = false
				break
			}
		}
		if comparable {
			cuts = append(cuts, v)
		}
	}
	if len(cuts) > 0 {
		// Order cuts by ancestry: c before d iff d is a descendant of c.
		sort.Slice(cuts, func(i, j int) bool { return desc[cuts[i]][cuts[j]] })
		n := &node{kind: seriesNode, steps: set}
		assigned := make(map[int]bool, len(set))
		for _, c := range cuts {
			assigned[c] = true
		}
		// Segment before the first cut, between consecutive cuts, after
		// the last: classified by ancestry relative to the cuts.
		segs := make([][]int, len(cuts)+1)
		for _, v := range set {
			if assigned[v] {
				continue
			}
			slot := len(cuts)
			for i, c := range cuts {
				if desc[v][c] { // v is an ancestor of cut c
					slot = i
					break
				}
			}
			segs[slot] = append(segs[slot], v)
		}
		for i := 0; i <= len(cuts); i++ {
			if len(segs[i]) > 0 {
				n.children = append(n.children, decompose(segs[i], preds, succs))
			}
			if i < len(cuts) {
				n.children = append(n.children, &node{kind: leafNode, steps: []int{cuts[i]}})
			}
		}
		if len(n.children) > 1 {
			return n
		}
	}
	return &node{kind: atomNode, steps: set}
}

// components returns the weakly connected components of the induced
// subgraph, each sorted, ordered by smallest member.
func components(set []int, in map[int]bool, preds, succs [][]int) [][]int {
	seen := make(map[int]bool, len(set))
	var comps [][]int
	sorted := append([]int(nil), set...)
	sort.Ints(sorted)
	for _, s := range sorted {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, lists := range [][][]int{preds, succs} {
				for _, u := range lists[v] {
					if in[u] && !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// reachability returns, for each step of the set, the steps reachable by
// following the given adjacency inside the set (excluding the step
// itself).
func reachability(set []int, in map[int]bool, adj [][]int) map[int]map[int]bool {
	out := make(map[int]map[int]bool, len(set))
	for _, s := range set {
		reach := make(map[int]bool)
		stack := append([]int(nil), adj[s]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !in[v] || reach[v] {
				continue
			}
			reach[v] = true
			stack = append(stack, adj[v]...)
		}
		out[s] = reach
	}
	return out
}
