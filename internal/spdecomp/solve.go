package spdecomp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Goal is the objective of a block solve, mirroring core's four
// objectives without importing core: minimize one metric subject to an
// optional cap on the other (zero caps mean unbounded).
type Goal struct {
	MinimizeLatency bool
	PeriodCap       float64
	LatencyCap      float64
}

// Feasible reports whether the cost respects the caps.
func (g Goal) Feasible(c mapping.Cost) bool {
	if g.PeriodCap > 0 && numeric.Greater(c.Period, g.PeriodCap) {
		return false
	}
	if g.LatencyCap > 0 && numeric.Greater(c.Latency, g.LatencyCap) {
		return false
	}
	return true
}

// Value returns the minimized metric.
func (g Goal) Value(c mapping.Cost) float64 {
	if g.MinimizeLatency {
		return c.Latency
	}
	return c.Period
}

// Better reports whether a strictly improves on b under the goal:
// feasibility first, then cap violation, then the minimized metric.
func (g Goal) Better(a, b mapping.Cost) bool {
	fa, fb := g.Feasible(a), g.Feasible(b)
	if fa != fb {
		return fa
	}
	if !fa {
		if va, vb := g.violation(a), g.violation(b); !numeric.Eq(va, vb) {
			return va < vb
		}
	}
	return numeric.Less(g.Value(a), g.Value(b))
}

func (g Goal) violation(c mapping.Cost) float64 {
	var v float64
	if g.PeriodCap > 0 && c.Period > g.PeriodCap {
		v += c.Period - g.PeriodCap
	}
	if g.LatencyCap > 0 && c.Latency > g.LatencyCap {
		v += c.Latency - g.LatencyCap
	}
	return v
}

// evalState carries the precomputed structure shared by every block
// evaluation of one solve: canonical topological order, predecessor
// lists and scratch buffers.
type evalState struct {
	g       workflow.SP
	pl      platform.Platform
	topo    []int
	preds   [][]int
	procOf  []int
	finish  []float64
	avail   []float64
	loadOf  []float64 // total weight per processor
	touched []int     // processors used by the current assignment
}

func newEvalState(g workflow.SP, pl platform.Platform) (*evalState, error) {
	topo, err := g.Topo()
	if err != nil {
		return nil, err
	}
	n, p := len(g.Steps), pl.Processors()
	return &evalState{
		g: g, pl: pl, topo: topo, preds: g.Preds(),
		procOf: make([]int, n), finish: make([]float64, n),
		avail: make([]float64, p), loadOf: make([]float64, p),
	}, nil
}

// costOf evaluates the step->processor assignment in procOf. The period
// is the largest per-processor load over speed; the latency is the
// makespan of the canonical list schedule (steps in topological order,
// each starting when its predecessors and its processor are free).
func (st *evalState) costOf() mapping.Cost {
	for _, q := range st.touched {
		st.avail[q], st.loadOf[q] = 0, 0
	}
	st.touched = st.touched[:0]
	var c mapping.Cost
	for _, v := range st.topo {
		q := st.procOf[v]
		if st.avail[q] == 0 && st.loadOf[q] == 0 {
			st.touched = append(st.touched, q)
		}
		start := st.avail[q]
		for _, u := range st.preds[v] {
			if st.finish[u] > start {
				start = st.finish[u]
			}
		}
		d := st.g.Steps[v].Weight / st.pl.Speeds[q]
		st.finish[v] = start + d
		st.avail[q] = st.finish[v]
		st.loadOf[q] += st.g.Steps[v].Weight
		if st.finish[v] > c.Latency {
			c.Latency = st.finish[v]
		}
	}
	for _, q := range st.touched {
		if per := st.loadOf[q] / st.pl.Speeds[q]; per > c.Period {
			c.Period = per
		}
	}
	return c
}

// blocks converts the current assignment into mapping blocks, ordered by
// processor index with steps ascending.
func (st *evalState) blocks() []mapping.SPBlock {
	byProc := make(map[int][]int)
	for v := range st.procOf {
		byProc[st.procOf[v]] = append(byProc[st.procOf[v]], v)
	}
	procs := make([]int, 0, len(byProc))
	for q := range byProc {
		procs = append(procs, q)
	}
	sort.Ints(procs)
	out := make([]mapping.SPBlock, 0, len(procs))
	for _, q := range procs {
		steps := byProc[q]
		sort.Ints(steps)
		out = append(out, mapping.SPBlock{Proc: q, Steps: steps})
	}
	return out
}

func (st *evalState) setBlocks(blocks []mapping.SPBlock) {
	for _, b := range blocks {
		for _, s := range b.Steps {
			st.procOf[s] = b.Proc
		}
	}
}

// ValidateBlocks checks that blocks partition every step exactly once
// onto distinct in-range processors.
func ValidateBlocks(g workflow.SP, pl platform.Platform, blocks []mapping.SPBlock) error {
	if len(blocks) == 0 {
		return errors.New("spdecomp: mapping has no block")
	}
	seenStep := make([]bool, len(g.Steps))
	seenProc := make(map[int]bool, len(blocks))
	for i, b := range blocks {
		if b.Proc < 0 || b.Proc >= pl.Processors() {
			return fmt.Errorf("spdecomp: block %d uses processor %d out of range [0,%d)", i, b.Proc, pl.Processors())
		}
		if seenProc[b.Proc] {
			return fmt.Errorf("spdecomp: processor P%d assigned to two blocks", b.Proc+1)
		}
		seenProc[b.Proc] = true
		if len(b.Steps) == 0 {
			return fmt.Errorf("spdecomp: block %d is empty", i)
		}
		for _, s := range b.Steps {
			if s < 0 || s >= len(g.Steps) {
				return fmt.Errorf("spdecomp: block %d references step %d out of range [0,%d)", i, s, len(g.Steps))
			}
			if seenStep[s] {
				return fmt.Errorf("spdecomp: step %q assigned to two blocks", g.Steps[s].Name)
			}
			seenStep[s] = true
		}
	}
	for s, ok := range seenStep {
		if !ok {
			return fmt.Errorf("spdecomp: step %q not mapped", g.Steps[s].Name)
		}
	}
	return nil
}

// Eval validates the blocks and returns their cost under the SP block
// model.
func Eval(g workflow.SP, pl platform.Platform, blocks []mapping.SPBlock) (mapping.Cost, error) {
	if err := g.Validate(); err != nil {
		return mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.Cost{}, err
	}
	if err := ValidateBlocks(g, pl, blocks); err != nil {
		return mapping.Cost{}, err
	}
	st, err := newEvalState(g, pl)
	if err != nil {
		return mapping.Cost{}, err
	}
	st.setBlocks(blocks)
	return st.costOf(), nil
}

// Bounds returns certified lower bounds on the period and latency of any
// block mapping: no period beats spreading the total work over all
// speeds or running the heaviest step on the fastest processor, and no
// latency beats the critical path at full speed.
func Bounds(g workflow.SP, pl platform.Platform) (periodLB, latencyLB float64) {
	total, maxW := 0.0, 0.0
	for _, s := range g.Steps {
		total += s.Weight
		if s.Weight > maxW {
			maxW = s.Weight
		}
	}
	sMax := pl.MaxSpeed()
	periodLB = total / pl.TotalSpeed()
	if lb := maxW / sMax; lb > periodLB {
		periodLB = lb
	}
	topo, _ := g.Topo()
	preds := g.Preds()
	cp := make([]float64, len(g.Steps))
	var critical float64
	for _, v := range topo {
		for _, u := range preds[v] {
			if cp[u] > cp[v] {
				cp[v] = cp[u]
			}
		}
		cp[v] += g.Steps[v].Weight
		if cp[v] > critical {
			critical = cp[v]
		}
	}
	latencyLB = critical / sMax
	if lb := total / pl.TotalSpeed(); lb > latencyLB {
		latencyLB = lb
	}
	return periodLB, latencyLB
}

// Candidate is a heuristic mapping with its evaluated cost.
type Candidate struct {
	Blocks []mapping.SPBlock
	Cost   mapping.Cost
}

// Heuristics returns a deterministic set of seed mappings: the whole DAG
// on the fastest processor, a makespan-greedy list schedule, a
// period-greedy LPT packing, and the recursive allocation that walks the
// SP decomposition tree splitting processors across parallel branches.
func Heuristics(g workflow.SP, pl platform.Platform) []Candidate {
	st, err := newEvalState(g, pl)
	if err != nil {
		return nil
	}
	var out []Candidate
	add := func(procOf []int) {
		copy(st.procOf, procOf)
		c := st.costOf()
		blocks := st.blocks()
		for _, prev := range out {
			if sameBlocks(prev.Blocks, blocks) {
				return
			}
		}
		out = append(out, Candidate{Blocks: blocks, Cost: c})
	}
	n, p := len(g.Steps), pl.Processors()

	// 1. Everything on the fastest processor: optimal latency for chains,
	// the fallback the legacy heuristics also seed with.
	fastest := pl.Fastest()
	all := make([]int, n)
	for i := range all {
		all[i] = fastest
	}
	add(all)

	// 2. Makespan-greedy list schedule: each step, in canonical order,
	// goes to the processor that finishes it earliest.
	greedy := make([]int, n)
	finish := make([]float64, n)
	avail := make([]float64, p)
	for _, v := range st.topo {
		ready := 0.0
		for _, u := range st.preds[v] {
			if finish[u] > ready {
				ready = finish[u]
			}
		}
		bestQ, bestT := 0, math.Inf(1)
		for q := 0; q < p; q++ {
			start := avail[q]
			if ready > start {
				start = ready
			}
			t := start + g.Steps[v].Weight/pl.Speeds[q]
			if t < bestT {
				bestQ, bestT = q, t
			}
		}
		greedy[v] = bestQ
		finish[v] = bestT
		avail[bestQ] = bestT
	}
	add(greedy)

	// 3. Period-greedy LPT: heaviest step first onto the processor with
	// the smallest resulting load over speed.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Steps[order[i]].Weight > g.Steps[order[j]].Weight
	})
	lpt := make([]int, n)
	load := make([]float64, p)
	for _, v := range order {
		bestQ, bestT := 0, math.Inf(1)
		for q := 0; q < p; q++ {
			if t := (load[q] + g.Steps[v].Weight) / pl.Speeds[q]; t < bestT {
				bestQ, bestT = q, t
			}
		}
		lpt[v] = bestQ
		load[bestQ] += g.Steps[v].Weight
	}
	add(lpt)

	// 4. Tree-recursive allocation: series children reuse the full
	// processor set sequentially, parallel children split it
	// proportionally to their work.
	tree := buildTree(g)
	rec := make([]int, n)
	bySpeed := pl.SortedBySpeed() // non-decreasing speed
	procsAll := make([]int, len(bySpeed))
	for i, q := range bySpeed {
		procsAll[len(bySpeed)-1-i] = q // fastest first
	}
	allocTree(g, pl, tree, procsAll, rec)
	add(rec)

	return out
}

// allocTree assigns each step of the subtree a processor from the given
// subset (fastest first).
func allocTree(g workflow.SP, pl platform.Platform, nd *node, procs []int, procOf []int) {
	if len(procs) == 0 {
		return
	}
	switch nd.kind {
	case leafNode:
		procOf[nd.steps[0]] = procs[0]
	case seriesNode:
		for _, c := range nd.children {
			allocTree(g, pl, c, procs, procOf)
		}
	case parallelNode:
		// Heaviest children first; give each a share of the processors
		// proportional to its work, at least one while supplies last.
		kids := append([]*node(nil), nd.children...)
		work := func(n *node) float64 {
			var w float64
			for _, s := range n.steps {
				w += g.Steps[s].Weight
			}
			return w
		}
		sort.SliceStable(kids, func(i, j int) bool { return work(kids[i]) > work(kids[j]) })
		total := work(nd)
		next := 0
		for i, c := range kids {
			if next >= len(procs) {
				// Out of processors: share the fastest of the subset.
				allocTree(g, pl, c, procs[:1], procOf)
				continue
			}
			share := int(math.Round(work(c) / total * float64(len(procs))))
			if share < 1 {
				share = 1
			}
			if rest := len(kids) - 1 - i; share > len(procs)-next-rest {
				share = len(procs) - next - rest
			}
			if share < 1 {
				share = 1
			}
			allocTree(g, pl, c, procs[next:next+share], procOf)
			next += share
		}
	default: // atomNode: LPT within the subset
		order := append([]int(nil), nd.steps...)
		sort.SliceStable(order, func(i, j int) bool {
			return g.Steps[order[i]].Weight > g.Steps[order[j]].Weight
		})
		load := make([]float64, len(procs))
		for _, v := range order {
			bestI, bestT := 0, math.Inf(1)
			for i, q := range procs {
				if t := (load[i] + g.Steps[v].Weight) / pl.Speeds[q]; t < bestT {
					bestI, bestT = i, t
				}
			}
			procOf[v] = procs[bestI]
			load[bestI] += g.Steps[v].Weight
		}
	}
}

func sameBlocks(a, b []mapping.SPBlock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Proc != b[i].Proc || len(a[i].Steps) != len(b[i].Steps) {
			return false
		}
		for j := range a[i].Steps {
			if a[i].Steps[j] != b[i].Steps[j] {
				return false
			}
		}
	}
	return true
}

// Best returns the goal-best candidate of the set.
func Best(cands []Candidate, goal Goal) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range cands {
		if !found || goal.Better(c.Cost, best.Cost) {
			best, found = c, true
		}
	}
	return best, found
}

// Budgeted runs a seeded stochastic local search (move and swap
// neighbourhoods over the step->processor assignment) from the best
// heuristic seed until the budget or the context expires. It returns the
// incumbent, the number of evaluated neighbours, and whether the
// incumbent respects the caps.
func Budgeted(ctx context.Context, g workflow.SP, pl platform.Platform, goal Goal, seed uint64, budget time.Duration) ([]mapping.SPBlock, mapping.Cost, int, bool, error) {
	st, err := newEvalState(g, pl)
	if err != nil {
		return nil, mapping.Cost{}, 0, false, err
	}
	cand, ok := Best(Heuristics(g, pl), goal)
	if !ok {
		return nil, mapping.Cost{}, 0, false, errors.New("spdecomp: no heuristic seed")
	}
	st.setBlocks(cand.Blocks)
	cur := append([]int(nil), st.procOf...)
	curCost := cand.Cost
	bestAssign := append([]int(nil), cur...)
	bestCost := curCost

	rng := rand.New(rand.NewSource(int64(seed)))
	deadline := time.Now().Add(budget)
	n, p := len(g.Steps), pl.Processors()
	iters := 0
	sinceImprove := 0
	for {
		if iters%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, mapping.Cost{}, iters, false, err
			}
			if !time.Now().Before(deadline) {
				break
			}
		}
		iters++
		copy(st.procOf, cur)
		v := rng.Intn(n)
		if p > 1 && rng.Intn(2) == 0 {
			// Swap the processors of two steps.
			u := rng.Intn(n)
			st.procOf[v], st.procOf[u] = st.procOf[u], st.procOf[v]
		} else {
			st.procOf[v] = rng.Intn(p)
		}
		c := st.costOf()
		if goal.Better(c, curCost) {
			copy(cur, st.procOf)
			curCost = c
			if goal.Better(c, bestCost) {
				copy(bestAssign, cur)
				bestCost = c
				sinceImprove = 0
				continue
			}
		}
		sinceImprove++
		if sinceImprove > 400 {
			// Restart from a random assignment to escape local optima.
			for i := range cur {
				cur[i] = rng.Intn(p)
			}
			copy(st.procOf, cur)
			curCost = st.costOf()
			sinceImprove = 0
		}
	}
	copy(st.procOf, bestAssign)
	st.costOf()
	return st.blocks(), bestCost, iters, goal.Feasible(bestCost), nil
}
