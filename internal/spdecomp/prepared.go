package spdecomp

import (
	"context"
	"errors"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Prepared solves one irreducible SP instance repeatedly under varying
// goals: the topological order, predecessor lists and evaluation scratch
// of evalState, the restricted-growth/assignment buffers of the
// exhaustive enumeration, the certified Bounds and the goal-independent
// heuristic candidate set all persist across solves, and each goal's
// exhaustive result is memoized. Results are bit-identical to the
// one-shot entry points, which wrap a prepared solver used once. Not
// safe for concurrent use.
type Prepared struct {
	g  workflow.SP
	pl platform.Platform
	st *evalState

	periodLB  float64
	latencyLB float64

	par int

	// Exhaustive enumeration scratch.
	assign    []int
	blockProc []int
	usedProc  []bool

	heur     []Candidate
	heurDone bool

	memo map[Goal]spMemo
}

// spMemo is one memoized exhaustive solve.
type spMemo struct {
	blocks []mapping.SPBlock
	c      mapping.Cost
	ok     bool
}

// NewPrepared builds a prepared solver, validating the graph structure
// once (the same topological-order check the one-shot path performs).
func NewPrepared(g workflow.SP, pl platform.Platform) (*Prepared, error) {
	st, err := newEvalState(g, pl)
	if err != nil {
		return nil, err
	}
	periodLB, latencyLB := Bounds(g, pl)
	n, p := len(g.Steps), pl.Processors()
	return &Prepared{
		g: g, pl: pl, st: st,
		periodLB: periodLB, latencyLB: latencyLB,
		assign:    make([]int, n),
		blockProc: make([]int, n),
		usedProc:  make([]bool, p),
		memo:      make(map[Goal]spMemo),
	}, nil
}

// SetParallelism sets the worker count of subsequent Exhaustive calls;
// values below two keep the scan serial. The partitioned scan folds
// deterministically, so the answer is bit-identical either way.
func (pp *Prepared) SetParallelism(workers int) { pp.par = workers }

// lowerBound returns the certified lower bound on the goal's minimized
// metric: once an incumbent reaches it no candidate can strictly improve
// (beyond the comparison tolerance), and ties resolve to the earlier
// candidate anyway, so enumeration past it cannot change the result.
func (pp *Prepared) lowerBound(goal Goal) float64 {
	if goal.MinimizeLatency {
		return pp.latencyLB
	}
	return pp.periodLB
}

func cloneSPBlocks(bs []mapping.SPBlock) []mapping.SPBlock {
	if bs == nil {
		return nil
	}
	out := make([]mapping.SPBlock, len(bs))
	for i, b := range bs {
		out[i] = mapping.SPBlock{Proc: b.Proc, Steps: append([]int(nil), b.Steps...)}
	}
	return out
}

// errStopEnum unwinds the serial enumeration once the incumbent has
// reached the certified lower bound.
var errStopEnum = errors.New("spdecomp: enumeration reached the certified bound")

// Exhaustive is the exhaustive block search for the prepared instance:
// scratch persists across calls, each goal's result is memoized, and
// with SetParallelism >= 2 the partition space is sharded across workers
// with a deterministic shard-order fold.
func (pp *Prepared) Exhaustive(ctx context.Context, goal Goal) ([]mapping.SPBlock, mapping.Cost, bool, error) {
	if r, ok := pp.memo[goal]; ok {
		return cloneSPBlocks(r.blocks), r.c, r.ok, nil
	}
	var (
		blocks []mapping.SPBlock
		c      mapping.Cost
		found  bool
		err    error
	)
	if pp.par > 1 {
		blocks, c, found, err = pp.exhaustivePar(ctx, goal)
	} else {
		blocks, c, found, err = pp.exhaustiveSerial(ctx, goal)
	}
	if err != nil {
		return nil, mapping.Cost{}, false, err
	}
	pp.memo[goal] = spMemo{blocks: blocks, c: c, ok: found}
	return cloneSPBlocks(blocks), c, found, nil
}

func (pp *Prepared) exhaustiveSerial(ctx context.Context, goal Goal) ([]mapping.SPBlock, mapping.Cost, bool, error) {
	st := pp.st
	n, p := len(pp.g.Steps), pp.pl.Processors()
	lb := pp.lowerBound(goal)
	var (
		best      []mapping.SPBlock
		bestCost  mapping.Cost
		found     bool
		iterSince int
	)
	var procs func(k, blocks int) error
	procs = func(k, blocks int) error {
		if k == blocks {
			for s := 0; s < n; s++ {
				st.procOf[s] = pp.blockProc[pp.assign[s]]
			}
			c := st.costOf()
			if goal.Feasible(c) && (!found || goal.Better(c, bestCost)) {
				best, bestCost, found = st.blocks(), c, true
				if goal.Value(bestCost) <= lb {
					return errStopEnum
				}
			}
			return nil
		}
		for q := 0; q < p; q++ {
			if pp.usedProc[q] {
				continue
			}
			pp.usedProc[q] = true
			pp.blockProc[k] = q
			if err := procs(k+1, blocks); err != nil {
				return err
			}
			pp.usedProc[q] = false
		}
		return nil
	}
	var parts func(s, blocks int) error
	parts = func(s, blocks int) error {
		if s == n {
			iterSince++
			if iterSince >= 64 {
				iterSince = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return procs(0, blocks)
		}
		limit := blocks
		if blocks < p {
			limit = blocks + 1
		}
		for b := 0; b < limit; b++ {
			pp.assign[s] = b
			nb := blocks
			if b == blocks {
				nb = blocks + 1
			}
			if err := parts(s+1, nb); err != nil {
				return err
			}
		}
		return nil
	}
	if err := parts(0, 0); err != nil && err != errStopEnum {
		// Leave usedProc clean for the next solve: the unwind skipped the
		// resets on the recursion path.
		for q := range pp.usedProc {
			pp.usedProc[q] = false
		}
		return nil, mapping.Cost{}, false, err
	}
	for q := range pp.usedProc {
		pp.usedProc[q] = false
	}
	return best, bestCost, found, nil
}

// BestHeuristic returns the goal-best candidate of the deterministic
// heuristic set, computing the (goal-independent) set once per prepared
// instance. The returned blocks are the caller's to keep.
func (pp *Prepared) BestHeuristic(goal Goal) (Candidate, bool) {
	if !pp.heurDone {
		pp.heur = Heuristics(pp.g, pp.pl)
		pp.heurDone = true
	}
	cand, ok := Best(pp.heur, goal)
	if !ok {
		return Candidate{}, false
	}
	return Candidate{Blocks: cloneSPBlocks(cand.Blocks), Cost: cand.Cost}, true
}

// Exhaustive enumerates every partition of the steps into blocks on
// distinct processors (restricted-growth set partitions crossed with
// injective processor assignments) and returns the best feasible
// mapping. ok is false when the caps admit no mapping. The enumeration
// order is deterministic, so ties resolve identically across runs.
func Exhaustive(ctx context.Context, g workflow.SP, pl platform.Platform, goal Goal) ([]mapping.SPBlock, mapping.Cost, bool, error) {
	pp, err := NewPrepared(g, pl)
	if err != nil {
		return nil, mapping.Cost{}, false, err
	}
	return pp.Exhaustive(ctx, goal)
}
