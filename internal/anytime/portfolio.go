package anytime

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repliflow/internal/incumbent"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Exact is the outcome of an exact portfolio member (Config.Exact):
// either an optimal mapping of the instance's kind, or a proof that no
// mapping satisfies the spec's bounds (Feasible == false).
type Exact struct {
	Pipeline *mapping.PipelineMapping
	Fork     *mapping.ForkMapping
	ForkJoin *mapping.ForkJoinMapping

	Cost     mapping.Cost
	Feasible bool
}

// Config tunes a portfolio run. The zero value is usable.
type Config struct {
	// Workers is the number of concurrent search members (one greedy
	// hill-climber plus Workers-1 annealers); <= 0 selects 3.
	Workers int
	// Seed is the base of the deterministic RNG streams: member i draws
	// from Seed+i. Two runs with equal seeds explore identical move
	// sequences per member (the shared incumbent still depends on
	// scheduling when members race).
	Seed int64
	// MaxIterations caps each member's mutation count; 0 means no cap
	// (the deadline and StallIterations govern termination).
	MaxIterations uint64
	// StallIterations is the per-member restart window: after this many
	// candidates without improving the shared incumbent the member
	// restarts from the incumbent, and gives up after a few fruitless
	// restarts; 0 selects 20000.
	StallIterations uint64
	// Exact, when non-nil, runs as one more member (typically a closure
	// over internal/exhaustive). Its completion certifies the result:
	// the incumbent becomes the proven optimum (or proven infeasible)
	// and the remaining members are cancelled.
	Exact func(ctx context.Context) (Exact, error)
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.StallIterations == 0 {
		c.StallIterations = 20000
	}
	return c
}

// Result is the outcome of a portfolio run: the best mapping found (of
// the instance's kind), its cost, and the certified quality statement.
type Result struct {
	Pipeline *mapping.PipelineMapping
	Fork     *mapping.ForkMapping
	ForkJoin *mapping.ForkJoinMapping

	Cost mapping.Cost
	// Feasible is false when no mapping honouring the spec's bounds was
	// found; for Optimal results that is a proof of infeasibility,
	// otherwise a possibly-false negative.
	Feasible bool
	// Optimal reports a certified optimum: the exact member finished,
	// or the incumbent reached the lower bound.
	Optimal bool
	// LowerBound is the instance's lower bound on the optimized
	// criterion (PipelineLB/ForkLB/ForkJoinLB).
	LowerBound float64
	// Gap is the certified relative optimality gap,
	// objective/LowerBound - 1, and 0 for proven optima. The true
	// optimum lies within [objective/(1+Gap), objective].
	Gap float64
	// Iterations is the total number of candidate mappings evaluated
	// by the annealing members.
	Iterations uint64
}

// run is the kind-generic portfolio loop. seeds are candidate mappings
// (invalid ones are skipped); eval returns a candidate's cost (false =
// structurally invalid); mutate returns a fresh mutated copy and must
// not modify its argument; fromExact projects an Exact onto M.
func run[M any](
	ctx context.Context, spec Spec, cfg Config, lb float64,
	seeds []M,
	eval func(M) (mapping.Cost, bool),
	mutate func(*rand.Rand, M) M,
	fromExact func(Exact) M,
) (m M, c mapping.Cost, res Result, err error) {
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		// Cancelled caller: abort. An already-expired deadline (a
		// minimal budget on a loaded host) is different — the seeds
		// below still yield the promised incumbent.
		return m, c, Result{}, err
	}
	cfg = cfg.normalized()
	res.LowerBound = lb

	inc := &incumbent.Best[M]{}
	for _, s := range seeds {
		if sc, ok := eval(s); ok {
			inc.Offer(spec, s, sc)
		}
	}

	var iters atomic.Uint64
	var optimal atomic.Bool
	var provenInfeasible atomic.Bool

	if ctx.Err() == nil {
		runCtx, cancelRun := context.WithCancel(ctx)
		defer cancelRun()
		certify := func() {
			optimal.Store(true)
			cancelRun()
		}

		// Already at the bound? No search needed.
		if _, bc, ok := inc.Snapshot(); ok && numeric.LessEq(spec.Objective(bc), lb) {
			certify()
		}

		var wg sync.WaitGroup
		if cfg.Exact != nil && !optimal.Load() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ex, err := cfg.Exact(runCtx)
				if err != nil {
					return // cancelled or failed: the incumbent stands uncertified
				}
				if ex.Feasible {
					inc.Adopt(spec, fromExact(ex), ex.Cost)
				} else {
					provenInfeasible.Store(true)
				}
				certify()
			}()
		}
		for w := 0; w < cfg.Workers && !optimal.Load(); w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				anneal(runCtx, spec, cfg, lb, id, inc, &iters, certify, seeds, eval, mutate)
			}(w)
		}
		wg.Wait()
	} else if _, bc, ok := inc.Snapshot(); ok && numeric.LessEq(spec.Objective(bc), lb) {
		optimal.Store(true) // a seed already proves the bound
	}

	res.Iterations = iters.Load()
	bm, bc, found := inc.Snapshot()
	if !found {
		// No feasible mapping surfaced: an infeasible verdict, exact
		// when the exact member proved it.
		res.Optimal = provenInfeasible.Load()
		return m, c, res, nil
	}
	res.Feasible = true
	obj := spec.Objective(bc)
	res.Gap = math.Max(0, obj/lb-1)
	if optimal.Load() && !provenInfeasible.Load() || numeric.LessEq(obj, lb) {
		res.Optimal = true
		res.Gap = 0
	}
	return bm, bc, res, nil
}

// anneal is one search member: member 0 is a greedy hill-climber
// (temperature 0), the rest are simulated annealers with geometric
// cooling and reheat cycles. All members share the incumbent and
// restart from it on stall.
func anneal[M any](
	ctx context.Context, spec Spec, cfg Config, lb float64, id int,
	inc *incumbent.Best[M], iters *atomic.Uint64, certify func(),
	seeds []M,
	eval func(M) (mapping.Cost, bool),
	mutate func(*rand.Rand, M) M,
) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	energy := func(c mapping.Cost) float64 {
		e := spec.Objective(c)
		// Bound violations are penalized proportionally to the lower
		// bound so infeasible states rank below typical feasible ones
		// while keeping a gradient toward feasibility.
		if spec.PeriodBound > 0 && c.Period > spec.PeriodBound {
			e += lb * (4 + 8*(c.Period/spec.PeriodBound-1))
		}
		if spec.LatencyBound > 0 && c.Latency > spec.LatencyBound {
			e += lb * (4 + 8*(c.Latency/spec.LatencyBound-1))
		}
		return e
	}

	// Start from the incumbent when one exists, else from this member's
	// seed (members spread over the seed list).
	start := func() (M, float64, bool) {
		if m, c, ok := inc.Snapshot(); ok {
			return m, energy(c), true
		}
		for off := 0; off < len(seeds); off++ {
			s := seeds[(id+off)%len(seeds)]
			if c, ok := eval(s); ok {
				return s, energy(c), true
			}
		}
		var zero M
		return zero, 0, false
	}
	cur, curE, ok := start()
	if !ok {
		return // no valid starting point of this kind
	}

	t0 := math.Max(curE, lb) * 0.2
	temp := t0
	if id == 0 {
		temp = 0 // hill-climber
	}
	var stalled uint64
	restarts := 0
	for it := uint64(0); cfg.MaxIterations == 0 || it < cfg.MaxIterations; it++ {
		if it&63 == 0 && ctx.Err() != nil {
			return
		}
		iters.Add(1)
		cand := mutate(rng, cur)
		c, valid := eval(cand)
		if !valid {
			stalled++
			continue
		}
		e := energy(c)
		if e <= curE || (temp > 0 && rng.Float64() < math.Exp((curE-e)/temp)) {
			cur, curE = cand, e
		}
		if inc.Offer(spec, cand, c) {
			stalled = 0
			if numeric.LessEq(spec.Objective(c), lb) {
				certify() // reached the lower bound: proven optimal
				return
			}
		} else {
			stalled++
		}
		if id != 0 {
			temp *= 0.999
			if temp < t0*0.01 {
				temp = t0 // reheat
			}
		}
		if stalled >= cfg.StallIterations {
			restarts++
			if restarts > 2 {
				return
			}
			if m, c, ok := inc.Snapshot(); ok {
				cur, curE = m, energy(c)
			}
			temp = t0
			stalled = 0
		}
	}
}

// SolvePipeline runs the portfolio on a pipeline instance.
func SolvePipeline(ctx context.Context, p workflow.Pipeline, pl platform.Platform, spec Spec, seeds []mapping.PipelineMapping, cfg Config) (Result, error) {
	lb := PipelineLB(p, pl, spec)
	eval := func(m mapping.PipelineMapping) (mapping.Cost, bool) {
		c, err := mapping.EvalPipeline(p, pl, m)
		return c, err == nil
	}
	mutate := pipelineMutator(p, pl, spec.AllowDP)
	m, c, res, err := run(ctx, spec, cfg, lb, seeds, eval, mutate,
		func(ex Exact) mapping.PipelineMapping { return *ex.Pipeline })
	if err != nil || !res.Feasible {
		return res, err
	}
	res.Pipeline, res.Cost = &m, c
	return res, nil
}

// SolveFork runs the portfolio on a fork instance.
func SolveFork(ctx context.Context, f workflow.Fork, pl platform.Platform, spec Spec, seeds []mapping.ForkMapping, cfg Config) (Result, error) {
	lb := ForkLB(f, pl, spec)
	eval := func(m mapping.ForkMapping) (mapping.Cost, bool) {
		c, err := mapping.EvalFork(f, pl, m)
		return c, err == nil
	}
	mutate := forkMutator(f, pl, spec.AllowDP)
	m, c, res, err := run(ctx, spec, cfg, lb, seeds, eval, mutate,
		func(ex Exact) mapping.ForkMapping { return *ex.Fork })
	if err != nil || !res.Feasible {
		return res, err
	}
	res.Fork, res.Cost = &m, c
	return res, nil
}

// SolveForkJoin runs the portfolio on a fork-join instance.
func SolveForkJoin(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, spec Spec, seeds []mapping.ForkJoinMapping, cfg Config) (Result, error) {
	lb := ForkJoinLB(fj, pl, spec)
	eval := func(m mapping.ForkJoinMapping) (mapping.Cost, bool) {
		c, err := mapping.EvalForkJoin(fj, pl, m)
		return c, err == nil
	}
	mutate := forkJoinMutator(fj, pl, spec.AllowDP)
	m, c, res, err := run(ctx, spec, cfg, lb, seeds, eval, mutate,
		func(ex Exact) mapping.ForkJoinMapping { return *ex.ForkJoin })
	if err != nil || !res.Feasible {
		return res, err
	}
	res.ForkJoin, res.Cost = &m, c
	return res, nil
}
