// Package anytime is the deadline-bounded portfolio solver for the
// NP-hard cells of Table 1 (heterogeneous pipelines with period-type
// objectives, data-parallel heterogeneous platforms, heterogeneous
// forks and fork-joins — Theorems 5, 9, 12, 13, 15), where the exact
// solvers of internal/exhaustive are exponential and the polynomial
// heuristics carry no quality statement.
//
// A portfolio run races three kinds of members against a deadline,
// sharing one best-so-far incumbent under a mutex:
//
//   - the caller's heuristic seed mappings (evaluated up front, so the
//     portfolio can never return a worse objective than its best seed);
//   - seeded simulated-annealing workers mutating mappings through
//     kind-specific neighbourhoods (interval merges/splits, leaf and
//     processor moves, mode toggles), each with its own deterministic
//     RNG stream;
//   - an optional exact member (Config.Exact, typically a closure over
//     internal/exhaustive) whose completion certifies the optimum and
//     stops the run early.
//
// Every result carries a certified optimality statement: the cheap
// lower bounds of this package (sum-of-work for the period,
// critical-path for the latency — see PeriodLB/LatencyLB and the
// per-kind PipelineLB/ForkLB/ForkJoinLB) bound the optimum from below,
// so Result.Gap = objective/lower-bound − 1 is a true upper bound on
// the distance to the optimum, and Gap == 0 proves optimality. The
// same bound primitives drive branch pruning inside
// internal/exhaustive; this package is the single implementation.
//
// The package sits beside internal/heuristics in the layering: it
// depends only on the graph/platform/mapping layers, and internal/core
// wires it into the solver registry (one anytime entry per NP-hard
// cell, engaged when Options.AnytimeBudget is set).
package anytime
