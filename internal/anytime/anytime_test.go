package anytime_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repliflow/internal/anytime"
	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestBoundsUnderlieExhaustiveOptima checks the certification invariant
// behind every reported gap: on randomized small instances, the cheap
// lower bounds never exceed the true (exhaustive) optimum, for both
// criteria, with and without data-parallelism.
func TestBoundsUnderlieExhaustiveOptima(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		for _, dp := range []bool{false, true} {
			p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
			if res, ok := exhaustive.PipelinePeriod(p, pl, dp); ok {
				lb := anytime.PipelineLB(p, pl, anytime.Spec{MinimizePeriod: true, AllowDP: dp})
				if numeric.Greater(lb, res.Cost.Period) {
					t.Fatalf("pipeline period LB %g > optimum %g (dp=%v, %v on %v)", lb, res.Cost.Period, dp, p, pl)
				}
			}
			if res, ok := exhaustive.PipelineLatency(p, pl, dp); ok {
				lb := anytime.PipelineLB(p, pl, anytime.Spec{AllowDP: dp})
				if numeric.Greater(lb, res.Cost.Latency) {
					t.Fatalf("pipeline latency LB %g > optimum %g (dp=%v, %v on %v)", lb, res.Cost.Latency, dp, p, pl)
				}
			}

			f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
			if res, ok := exhaustive.ForkPeriod(f, pl, dp); ok {
				lb := anytime.ForkLB(f, pl, anytime.Spec{MinimizePeriod: true, AllowDP: dp})
				if numeric.Greater(lb, res.Cost.Period) {
					t.Fatalf("fork period LB %g > optimum %g (dp=%v, %v on %v)", lb, res.Cost.Period, dp, f, pl)
				}
			}
			if res, ok := exhaustive.ForkLatency(f, pl, dp); ok {
				lb := anytime.ForkLB(f, pl, anytime.Spec{AllowDP: dp})
				if numeric.Greater(lb, res.Cost.Latency) {
					t.Fatalf("fork latency LB %g > optimum %g (dp=%v, %v on %v)", lb, res.Cost.Latency, dp, f, pl)
				}
			}

			fj := workflow.RandomForkJoin(rng, 1+rng.Intn(2), 9)
			if res, ok := exhaustive.ForkJoinPeriod(fj, pl, dp); ok {
				lb := anytime.ForkJoinLB(fj, pl, anytime.Spec{MinimizePeriod: true, AllowDP: dp})
				if numeric.Greater(lb, res.Cost.Period) {
					t.Fatalf("fork-join period LB %g > optimum %g (dp=%v, %v on %v)", lb, res.Cost.Period, dp, fj, pl)
				}
			}
			if res, ok := exhaustive.ForkJoinLatency(fj, pl, dp); ok {
				lb := anytime.ForkJoinLB(fj, pl, anytime.Spec{AllowDP: dp})
				if numeric.Greater(lb, res.Cost.Latency) {
					t.Fatalf("fork-join latency LB %g > optimum %g (dp=%v, %v on %v)", lb, res.Cost.Latency, dp, fj, pl)
				}
			}
		}
	}
}

// TestPortfolioNeverWorseThanSeeds is the portfolio's core guarantee:
// whatever the budget, the result objective never exceeds the best
// seed's.
func TestPortfolioNeverWorseThanSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		p := workflow.RandomPipeline(rng, 6+rng.Intn(6), 20)
		pl := platform.Random(rng, 6+rng.Intn(6), 5)
		spec := anytime.Spec{MinimizePeriod: trial%2 == 0, AllowDP: true}
		seeds := []mapping.PipelineMapping{
			mapping.ReplicateAllPipeline(p, pl),
		}
		bestSeed, err := mapping.EvalPipeline(p, pl, seeds[0])
		if err != nil {
			t.Fatal(err)
		}
		res, err := anytime.SolvePipeline(context.Background(), p, pl, spec, seeds,
			anytime.Config{Seed: int64(trial), MaxIterations: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("trial %d: infeasible result despite a valid seed", trial)
		}
		if numeric.Greater(spec.Objective(res.Cost), spec.Objective(bestSeed)) {
			t.Errorf("trial %d: portfolio %g worse than seed %g", trial, spec.Objective(res.Cost), spec.Objective(bestSeed))
		}
		if res.Gap < 0 {
			t.Errorf("trial %d: negative gap %g", trial, res.Gap)
		}
		if res.LowerBound <= 0 {
			t.Errorf("trial %d: non-positive lower bound %g", trial, res.LowerBound)
		}
		// The returned mapping must actually achieve the reported cost.
		got, err := mapping.EvalPipeline(p, pl, *res.Pipeline)
		if err != nil {
			t.Fatalf("trial %d: invalid result mapping: %v", trial, err)
		}
		if !numeric.Eq(got.Period, res.Cost.Period) || !numeric.Eq(got.Latency, res.Cost.Latency) {
			t.Errorf("trial %d: reported cost %v, evaluated %v", trial, res.Cost, got)
		}
	}
}

// TestPortfolioExactMemberCertifies runs the portfolio with an exact
// member on small instances: the result must be certified optimal with
// gap 0 at exactly the exhaustive optimum.
func TestPortfolioExactMemberCertifies(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		spec := anytime.Spec{MinimizePeriod: true, AllowDP: true}
		want, ok := exhaustive.ForkPeriod(f, pl, true)
		if !ok {
			t.Fatal("exhaustive found no mapping")
		}
		cfg := anytime.Config{
			Seed: int64(trial),
			Exact: func(ctx context.Context) (anytime.Exact, error) {
				res, ok, err := exhaustive.ForkPeriodCtx(ctx, f, pl, true)
				if err != nil {
					return anytime.Exact{}, err
				}
				m := res.Mapping
				return anytime.Exact{Fork: &m, Cost: res.Cost, Feasible: ok}, nil
			},
		}
		res, err := anytime.SolveFork(context.Background(), f, pl, spec,
			[]mapping.ForkMapping{mapping.ReplicateAllFork(f, pl)}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible || !res.Optimal {
			t.Fatalf("trial %d: want certified feasible optimum, got feasible=%v optimal=%v", trial, res.Feasible, res.Optimal)
		}
		if res.Gap != 0 {
			t.Errorf("trial %d: optimal result has gap %g", trial, res.Gap)
		}
		if !numeric.Eq(res.Cost.Period, want.Cost.Period) {
			t.Errorf("trial %d: period %g, exhaustive optimum %g", trial, res.Cost.Period, want.Cost.Period)
		}
	}
}

// TestPortfolioHonoursBoundedSpec checks that results on bounded
// objectives respect the bound, and that an unreachable bound yields an
// infeasible verdict rather than a violating mapping.
func TestPortfolioHonoursBoundedSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fj := workflow.RandomForkJoin(rng, 6, 9)
	pl := platform.Random(rng, 6, 4)
	all := mapping.ReplicateAllForkJoin(fj, pl)
	base, err := mapping.EvalForkJoin(fj, pl, all)
	if err != nil {
		t.Fatal(err)
	}

	reachable := anytime.Spec{MinimizePeriod: false, PeriodBound: base.Period * 2, AllowDP: true}
	res, err := anytime.SolveForkJoin(context.Background(), fj, pl, reachable,
		[]mapping.ForkJoinMapping{all}, anytime.Config{Seed: 5, MaxIterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("reachable bound reported infeasible despite a feasible seed")
	}
	if numeric.Greater(res.Cost.Period, reachable.PeriodBound) {
		t.Errorf("result period %g violates bound %g", res.Cost.Period, reachable.PeriodBound)
	}

	unreachable := anytime.Spec{MinimizePeriod: false, PeriodBound: base.Period * 1e-9, AllowDP: true}
	res, err = anytime.SolveForkJoin(context.Background(), fj, pl, unreachable,
		[]mapping.ForkJoinMapping{all}, anytime.Config{Seed: 5, MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("unreachable bound produced a feasible result with period %g <= %g?", res.Cost.Period, unreachable.PeriodBound)
	}
}

// TestPortfolioReturnsIncumbentAtDeadline: a portfolio bounded by a
// short deadline still returns its incumbent instead of a context
// error.
func TestPortfolioReturnsIncumbentAtDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := workflow.RandomPipeline(rng, 16, 20)
	pl := platform.Random(rng, 14, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := anytime.SolvePipeline(ctx, p, pl, anytime.Spec{MinimizePeriod: true, AllowDP: true},
		[]mapping.PipelineMapping{mapping.ReplicateAllPipeline(p, pl)}, anytime.Config{Seed: 1})
	if err != nil {
		t.Fatalf("deadline-bounded portfolio errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("portfolio returned after %v, want prompt return at the deadline", elapsed)
	}
	if !res.Feasible {
		t.Fatal("no incumbent despite a valid seed")
	}
	if res.Gap < 0 {
		t.Errorf("negative gap %g", res.Gap)
	}
}

// TestPortfolioAnswersFromSeedsWhenDeadlineAlreadyExpired: a budget so
// tight that it expires before the search starts still yields the
// seeded incumbent — never a deadline error (the never-timeout
// contract of budgeted solving). A cancelled context, by contrast,
// aborts.
func TestPortfolioAnswersFromSeedsWhenDeadlineAlreadyExpired(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := workflow.RandomPipeline(rng, 10, 9)
	pl := platform.Random(rng, 8, 4)
	seeds := []mapping.PipelineMapping{mapping.ReplicateAllPipeline(p, pl)}
	spec := anytime.Spec{MinimizePeriod: true, AllowDP: true}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := anytime.SolvePipeline(expired, p, pl, spec, seeds, anytime.Config{Seed: 1})
	if err != nil {
		t.Fatalf("expired deadline errored instead of answering from seeds: %v", err)
	}
	if !res.Feasible || res.Gap < 0 {
		t.Fatalf("want the seed incumbent, got feasible=%v gap=%g", res.Feasible, res.Gap)
	}

	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := anytime.SolvePipeline(cancelled, p, pl, spec, seeds, anytime.Config{Seed: 1}); err == nil {
		t.Fatal("cancelled context produced a result")
	}
}

// TestPortfolioImprovesOnPoorSeed: annealing must beat a deliberately
// bad seed (everything on the slowest processor) given iterations on a
// platform with one fast processor.
func TestPortfolioImprovesOnPoorSeed(t *testing.T) {
	p := workflow.NewPipeline(5, 5, 5, 5)
	pl := platform.New(10, 1)
	// Everything on the slow processor: period 20, latency 20.
	bad := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 3, mapping.Replicated, 1),
	}}
	spec := anytime.Spec{MinimizePeriod: true}
	res, err := anytime.SolvePipeline(context.Background(), p, pl, spec,
		[]mapping.PipelineMapping{bad}, anytime.Config{Seed: 3, MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if !numeric.Less(res.Cost.Period, 20) {
		t.Errorf("annealing never improved on the bad seed: period %g", res.Cost.Period)
	}
}
