package anytime

import (
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Spec states the optimization target of a portfolio run in cost terms:
// which criterion is minimized, which bounds constrain feasibility, and
// whether data-parallel groups are allowed. It is the kind-independent
// projection of a core.Problem's objective.
type Spec struct {
	// MinimizePeriod selects the optimized criterion: the period when
	// true, the latency otherwise.
	MinimizePeriod bool
	// PeriodBound, when > 0, restricts feasible mappings to those with
	// period <= PeriodBound (the latency-under-period objectives).
	PeriodBound float64
	// LatencyBound, when > 0, restricts feasible mappings to those with
	// latency <= LatencyBound (the period-under-latency objectives).
	LatencyBound float64
	// AllowDP permits data-parallel groups.
	AllowDP bool
}

// Objective returns the optimized criterion of a cost.
func (s Spec) Objective(c mapping.Cost) float64 {
	if s.MinimizePeriod {
		return c.Period
	}
	return c.Latency
}

// Feasible reports whether a cost honours the spec's bounds.
func (s Spec) Feasible(c mapping.Cost) bool {
	if s.PeriodBound > 0 && numeric.Greater(c.Period, s.PeriodBound) {
		return false
	}
	if s.LatencyBound > 0 && numeric.Greater(c.Latency, s.LatencyBound) {
		return false
	}
	return true
}

// PeriodLB is the sum-of-work period bound: a set of groups of total
// weight work, mapped onto disjoint processor sets whose speeds sum to
// at most speedSum, has max-group-period >= work/speedSum — a
// replicated group's capacity k·min(s) and a data-parallel group's
// capacity Σs are both at most the group's speed sum, and the group
// speed sums are disjoint slices of speedSum.
func PeriodLB(work, speedSum float64) float64 {
	return work / speedSum
}

// LatencyLB is the serial-chain latency bound: work units that must be
// traversed sequentially take at least work/maxSpeed time units without
// data-parallelism (a replicated group's delay is weight/min(s) >=
// weight/maxSpeed) and at least work/speedSum with it (a data-parallel
// group's delay is weight/Σs >= work-share/speedSum).
func LatencyLB(work, speedSum, maxSpeed float64, allowDP bool) float64 {
	if allowDP {
		return work / speedSum
	}
	return work / maxSpeed
}

// PipelineLB returns a lower bound on the spec's optimized criterion
// over all valid mappings of the pipeline: sum-of-work for the period,
// full-traversal (every stage is on the single data path) for the
// latency. The bound holds for the bounded-objective variants too —
// a feasibility constraint only shrinks the mapping set.
func PipelineLB(p workflow.Pipeline, pl platform.Platform, spec Spec) float64 {
	if spec.MinimizePeriod {
		return PeriodLB(p.TotalWork(), pl.TotalSpeed())
	}
	return LatencyLB(p.TotalWork(), pl.TotalSpeed(), pl.MaxSpeed(), spec.AllowDP)
}

// heaviest returns the largest weight, or 0 for a leafless graph.
func heaviest(weights []float64) float64 {
	if len(weights) == 0 {
		return 0
	}
	return numeric.MaxFloat(weights)
}

// ForkLB returns a lower bound on the spec's optimized criterion over
// all valid mappings of the fork: sum-of-work for the period,
// critical-path (root plus heaviest leaf) for the latency.
func ForkLB(f workflow.Fork, pl platform.Platform, spec Spec) float64 {
	if spec.MinimizePeriod {
		return PeriodLB(f.TotalWork(), pl.TotalSpeed())
	}
	return LatencyLB(f.Root+heaviest(f.Weights), pl.TotalSpeed(), pl.MaxSpeed(), spec.AllowDP)
}

// ForkJoinLB returns a lower bound on the spec's optimized criterion
// over all valid mappings of the fork-join: sum-of-work for the
// period, critical-path (root, heaviest leaf, join) for the latency.
func ForkJoinLB(fj workflow.ForkJoin, pl platform.Platform, spec Spec) float64 {
	if spec.MinimizePeriod {
		return PeriodLB(fj.TotalWork(), pl.TotalSpeed())
	}
	return LatencyLB(fj.Root+heaviest(fj.Weights)+fj.Join, pl.TotalSpeed(), pl.MaxSpeed(), spec.AllowDP)
}
