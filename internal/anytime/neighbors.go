package anytime

import (
	"math/rand"
	"sort"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// The mutators below implement the annealing neighbourhoods: each call
// clones the mapping and applies one random structural move (boundary
// shifts, merges, splits, leaf moves, processor moves, mode toggles).
// Moves keep the easy invariants (partition structure, disjoint
// processor sets) and leave the full legality check to the Eval
// functions — a candidate that trips a subtle rule (e.g. data-parallel
// legality) is simply rejected by the caller.

// freeProcs returns the processors not used by any of the groups.
func freeProcs(pl platform.Platform, used [][]int) []int {
	taken := make([]bool, pl.Processors())
	for _, procs := range used {
		for _, q := range procs {
			taken[q] = true
		}
	}
	var free []int
	for q, t := range taken {
		if !t {
			free = append(free, q)
		}
	}
	return free
}

// takeRandom removes and returns a random element of *s.
func takeRandom(rng *rand.Rand, s *[]int) int {
	i := rng.Intn(len(*s))
	v := (*s)[i]
	*s = append((*s)[:i], (*s)[i+1:]...)
	return v
}

func insertSorted(s []int, v int) []int {
	s = append(s, v)
	sort.Ints(s)
	return s
}

// sortedUnion appends b to a and re-sorts (the sets are disjoint).
func sortedUnion(a, b []int) []int {
	a = append(a, b...)
	sort.Ints(a)
	return a
}

// splitProcs partitions procs (already a private copy) into two
// non-empty halves at a random shuffled cut. len(procs) must be >= 2.
func splitProcs(rng *rand.Rand, procs []int) (a, b []int) {
	rng.Shuffle(len(procs), func(i, j int) { procs[i], procs[j] = procs[j], procs[i] })
	k := 1 + rng.Intn(len(procs)-1)
	a = append([]int(nil), procs[:k]...)
	b = append([]int(nil), procs[k:]...)
	sort.Ints(a)
	sort.Ints(b)
	return a, b
}

// --- Pipeline ---------------------------------------------------------------

func clonePipeline(m mapping.PipelineMapping) mapping.PipelineMapping {
	out := mapping.PipelineMapping{Intervals: make([]mapping.PipelineInterval, len(m.Intervals))}
	copy(out.Intervals, m.Intervals)
	for i := range out.Intervals {
		out.Intervals[i].Procs = append([]int(nil), out.Intervals[i].Procs...)
	}
	return out
}

// pipelineMutator returns the pipeline neighbourhood function.
func pipelineMutator(p workflow.Pipeline, pl platform.Platform, allowDP bool) func(*rand.Rand, mapping.PipelineMapping) mapping.PipelineMapping {
	return func(rng *rand.Rand, m0 mapping.PipelineMapping) mapping.PipelineMapping {
		m := clonePipeline(m0)
		for attempt := 0; attempt < 4; attempt++ {
			if pipelineMove(rng, &m, pl, allowDP) {
				break
			}
		}
		return m
	}
}

func pipelineMove(rng *rand.Rand, m *mapping.PipelineMapping, pl platform.Platform, allowDP bool) bool {
	iv := m.Intervals
	used := make([][]int, len(iv))
	for i := range iv {
		used[i] = iv[i].Procs
	}
	free := freeProcs(pl, used)
	// A multi-stage interval can never be data-parallel; moves that grow
	// an interval reset its mode.
	demote := func(i int) {
		if iv[i].Last > iv[i].First {
			iv[i].Mode = mapping.Replicated
		}
	}
	switch rng.Intn(8) {
	case 0: // shift a boundary between adjacent intervals
		if len(iv) < 2 {
			return false
		}
		i := rng.Intn(len(iv) - 1)
		if rng.Intn(2) == 0 && iv[i].Last > iv[i].First {
			iv[i].Last--
			iv[i+1].First--
		} else if iv[i+1].Last > iv[i+1].First {
			iv[i+1].First++
			iv[i].Last++
		} else {
			return false
		}
		demote(i)
		demote(i + 1)
	case 1: // merge adjacent intervals
		if len(iv) < 2 {
			return false
		}
		i := rng.Intn(len(iv) - 1)
		iv[i].Last = iv[i+1].Last
		iv[i].Procs = sortedUnion(iv[i].Procs, iv[i+1].Procs)
		iv[i].Mode = mapping.Replicated
		m.Intervals = append(iv[:i+1], iv[i+2:]...)
	case 2: // split an interval
		i := rng.Intn(len(iv))
		if iv[i].Last == iv[i].First {
			return false
		}
		cut := iv[i].First + 1 + rng.Intn(iv[i].Last-iv[i].First)
		left := iv[i]
		right := mapping.PipelineInterval{First: cut, Last: iv[i].Last}
		left.Last = cut - 1
		left.Mode, right.Mode = mapping.Replicated, mapping.Replicated
		if len(left.Procs) >= 2 {
			left.Procs, right.Procs = splitProcs(rng, left.Procs)
		} else if len(free) > 0 {
			right.Procs = []int{takeRandom(rng, &free)}
		} else {
			return false
		}
		out := append(append(append([]mapping.PipelineInterval(nil), iv[:i]...), left, right), iv[i+1:]...)
		m.Intervals = out
	case 3: // grow an interval with a free processor
		if len(free) == 0 {
			return false
		}
		i := rng.Intn(len(iv))
		iv[i].Procs = insertSorted(iv[i].Procs, takeRandom(rng, &free))
	case 4: // shrink an interval, freeing a processor
		i := rng.Intn(len(iv))
		if len(iv[i].Procs) < 2 {
			return false
		}
		takeRandom(rng, &iv[i].Procs)
	case 5: // move a processor between intervals
		if len(iv) < 2 {
			return false
		}
		a, b := rng.Intn(len(iv)), rng.Intn(len(iv))
		if a == b || len(iv[a].Procs) < 2 {
			return false
		}
		iv[b].Procs = insertSorted(iv[b].Procs, takeRandom(rng, &iv[a].Procs))
	case 6: // swap processors between intervals
		if len(iv) < 2 {
			return false
		}
		a, b := rng.Intn(len(iv)), rng.Intn(len(iv))
		if a == b {
			return false
		}
		qa, qb := takeRandom(rng, &iv[a].Procs), takeRandom(rng, &iv[b].Procs)
		iv[a].Procs = insertSorted(iv[a].Procs, qb)
		iv[b].Procs = insertSorted(iv[b].Procs, qa)
	default: // toggle the mode of a single-stage interval
		if !allowDP {
			return false
		}
		i := rng.Intn(len(iv))
		if iv[i].First != iv[i].Last {
			return false
		}
		if iv[i].Mode == mapping.Replicated {
			iv[i].Mode = mapping.DataParallel
		} else {
			iv[i].Mode = mapping.Replicated
		}
	}
	return true
}

// --- Fork -------------------------------------------------------------------

func cloneFork(m mapping.ForkMapping) mapping.ForkMapping {
	out := mapping.ForkMapping{Blocks: make([]mapping.ForkBlock, len(m.Blocks))}
	copy(out.Blocks, m.Blocks)
	for i := range out.Blocks {
		out.Blocks[i].Procs = append([]int(nil), out.Blocks[i].Procs...)
		out.Blocks[i].Leaves = append([]int(nil), out.Blocks[i].Leaves...)
	}
	return out
}

func forkMutator(f workflow.Fork, pl platform.Platform, allowDP bool) func(*rand.Rand, mapping.ForkMapping) mapping.ForkMapping {
	return func(rng *rand.Rand, m0 mapping.ForkMapping) mapping.ForkMapping {
		m := cloneFork(m0)
		for attempt := 0; attempt < 4; attempt++ {
			if forkMove(rng, &m, pl, allowDP) {
				break
			}
		}
		return m
	}
}

// forkBlockEmpty reports whether a fork block carries no stage.
func forkBlockEmpty(b mapping.ForkBlock) bool { return !b.Root && len(b.Leaves) == 0 }

func forkMove(rng *rand.Rand, m *mapping.ForkMapping, pl platform.Platform, allowDP bool) bool {
	bs := m.Blocks
	used := make([][]int, len(bs))
	for i := range bs {
		used[i] = bs[i].Procs
	}
	free := freeProcs(pl, used)
	demote := func(i int) {
		if bs[i].Root && len(bs[i].Leaves) > 0 {
			bs[i].Mode = mapping.Replicated
		}
	}
	removeIfEmpty := func(i int) {
		if forkBlockEmpty(bs[i]) {
			m.Blocks = append(bs[:i], bs[i+1:]...)
		}
	}
	switch rng.Intn(8) {
	case 0: // move a leaf to another (or a new) block
		var src []int // block indices holding at least one leaf
		for i := range bs {
			if len(bs[i].Leaves) > 0 {
				src = append(src, i)
			}
		}
		if len(src) == 0 {
			return false
		}
		i := src[rng.Intn(len(src))]
		leaf := takeRandom(rng, &bs[i].Leaves)
		if j := rng.Intn(len(bs) + 1); j < len(bs) && j != i {
			bs[j].Leaves = insertSorted(bs[j].Leaves, leaf)
			demote(j)
		} else if len(free) > 0 {
			m.Blocks = append(bs, mapping.NewForkBlock(false, []int{leaf}, mapping.Replicated, takeRandom(rng, &free)))
			bs = m.Blocks
		} else {
			bs[i].Leaves = insertSorted(bs[i].Leaves, leaf)
			return false
		}
		removeIfEmpty(i)
	case 1: // merge two blocks
		if len(bs) < 2 {
			return false
		}
		a, b := rng.Intn(len(bs)), rng.Intn(len(bs))
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		bs[a].Root = bs[a].Root || bs[b].Root
		bs[a].Leaves = sortedUnion(bs[a].Leaves, bs[b].Leaves)
		bs[a].Procs = sortedUnion(bs[a].Procs, bs[b].Procs)
		bs[a].Mode = mapping.Replicated
		m.Blocks = append(bs[:b], bs[b+1:]...)
	case 2: // split a block's leaves off into a new block
		i := rng.Intn(len(bs))
		if len(bs[i].Leaves) < 2 && !(bs[i].Root && len(bs[i].Leaves) == 1) {
			return false
		}
		k := 1
		if len(bs[i].Leaves) > 1 {
			k = 1 + rng.Intn(len(bs[i].Leaves)-1)
		}
		var moved []int
		for n := 0; n < k; n++ {
			moved = insertSorted(moved, takeRandom(rng, &bs[i].Leaves))
		}
		nb := mapping.ForkBlock{Leaves: moved, Assignment: mapping.Assignment{Mode: mapping.Replicated}}
		if len(bs[i].Procs) >= 2 {
			nb.Procs = []int{takeRandom(rng, &bs[i].Procs)}
		} else if len(free) > 0 {
			nb.Procs = []int{takeRandom(rng, &free)}
		} else {
			return false
		}
		m.Blocks = append(bs, nb)
	case 3: // grow a block with a free processor
		if len(free) == 0 {
			return false
		}
		i := rng.Intn(len(bs))
		bs[i].Procs = insertSorted(bs[i].Procs, takeRandom(rng, &free))
	case 4: // shrink a block, freeing a processor
		i := rng.Intn(len(bs))
		if len(bs[i].Procs) < 2 {
			return false
		}
		takeRandom(rng, &bs[i].Procs)
	case 5: // move a processor between blocks
		if len(bs) < 2 {
			return false
		}
		a, b := rng.Intn(len(bs)), rng.Intn(len(bs))
		if a == b || len(bs[a].Procs) < 2 {
			return false
		}
		bs[b].Procs = insertSorted(bs[b].Procs, takeRandom(rng, &bs[a].Procs))
	case 6: // swap processors between blocks
		if len(bs) < 2 {
			return false
		}
		a, b := rng.Intn(len(bs)), rng.Intn(len(bs))
		if a == b {
			return false
		}
		qa, qb := takeRandom(rng, &bs[a].Procs), takeRandom(rng, &bs[b].Procs)
		bs[a].Procs = insertSorted(bs[a].Procs, qb)
		bs[b].Procs = insertSorted(bs[b].Procs, qa)
	default: // toggle a block's mode
		if !allowDP {
			return false
		}
		i := rng.Intn(len(bs))
		if bs[i].Root && len(bs[i].Leaves) > 0 {
			return false // S0 cannot be data-parallelized with other stages
		}
		if bs[i].Mode == mapping.Replicated {
			bs[i].Mode = mapping.DataParallel
		} else {
			bs[i].Mode = mapping.Replicated
		}
	}
	return true
}

// --- Fork-join --------------------------------------------------------------

func cloneForkJoin(m mapping.ForkJoinMapping) mapping.ForkJoinMapping {
	out := mapping.ForkJoinMapping{Blocks: make([]mapping.ForkJoinBlock, len(m.Blocks))}
	copy(out.Blocks, m.Blocks)
	for i := range out.Blocks {
		out.Blocks[i].Procs = append([]int(nil), out.Blocks[i].Procs...)
		out.Blocks[i].Leaves = append([]int(nil), out.Blocks[i].Leaves...)
	}
	return out
}

func forkJoinMutator(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) func(*rand.Rand, mapping.ForkJoinMapping) mapping.ForkJoinMapping {
	return func(rng *rand.Rand, m0 mapping.ForkJoinMapping) mapping.ForkJoinMapping {
		m := cloneForkJoin(m0)
		for attempt := 0; attempt < 4; attempt++ {
			if forkJoinMove(rng, &m, pl, allowDP) {
				break
			}
		}
		return m
	}
}

func forkJoinBlockEmpty(b mapping.ForkJoinBlock) bool {
	return !b.Root && !b.Join && len(b.Leaves) == 0
}

// forkJoinDPLegal mirrors ValidateForkJoin's data-parallel rule: a DP
// block is leaf-only, or the root alone, or the join alone.
func forkJoinDPLegal(b mapping.ForkJoinBlock) bool {
	if b.Root {
		return len(b.Leaves) == 0 && !b.Join
	}
	if b.Join {
		return len(b.Leaves) == 0
	}
	return true
}

func forkJoinMove(rng *rand.Rand, m *mapping.ForkJoinMapping, pl platform.Platform, allowDP bool) bool {
	bs := m.Blocks
	used := make([][]int, len(bs))
	for i := range bs {
		used[i] = bs[i].Procs
	}
	free := freeProcs(pl, used)
	demote := func(i int) {
		if !forkJoinDPLegal(bs[i]) {
			bs[i].Mode = mapping.Replicated
		}
	}
	removeIfEmpty := func(i int) {
		if forkJoinBlockEmpty(bs[i]) {
			m.Blocks = append(bs[:i], bs[i+1:]...)
		}
	}
	switch rng.Intn(9) {
	case 0: // move a leaf to another (or a new) block
		var src []int
		for i := range bs {
			if len(bs[i].Leaves) > 0 {
				src = append(src, i)
			}
		}
		if len(src) == 0 {
			return false
		}
		i := src[rng.Intn(len(src))]
		leaf := takeRandom(rng, &bs[i].Leaves)
		if j := rng.Intn(len(bs) + 1); j < len(bs) && j != i {
			bs[j].Leaves = insertSorted(bs[j].Leaves, leaf)
			demote(j)
		} else if len(free) > 0 {
			m.Blocks = append(bs, mapping.NewForkJoinBlock(false, false, []int{leaf}, mapping.Replicated, takeRandom(rng, &free)))
			bs = m.Blocks
		} else {
			bs[i].Leaves = insertSorted(bs[i].Leaves, leaf)
			return false
		}
		removeIfEmpty(i)
	case 1: // relocate the join stage
		ji := -1
		for i := range bs {
			if bs[i].Join {
				ji = i
			}
		}
		bs[ji].Join = false
		if j := rng.Intn(len(bs) + 1); j < len(bs) && j != ji {
			bs[j].Join = true
			demote(j)
		} else if len(free) > 0 {
			m.Blocks = append(bs, mapping.NewForkJoinBlock(false, true, nil, mapping.Replicated, takeRandom(rng, &free)))
			bs = m.Blocks
		} else {
			bs[ji].Join = true
			return false
		}
		removeIfEmpty(ji)
	case 2: // merge two blocks
		if len(bs) < 2 {
			return false
		}
		a, b := rng.Intn(len(bs)), rng.Intn(len(bs))
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		bs[a].Root = bs[a].Root || bs[b].Root
		bs[a].Join = bs[a].Join || bs[b].Join
		bs[a].Leaves = sortedUnion(bs[a].Leaves, bs[b].Leaves)
		bs[a].Procs = sortedUnion(bs[a].Procs, bs[b].Procs)
		bs[a].Mode = mapping.Replicated
		m.Blocks = append(bs[:b], bs[b+1:]...)
	case 3: // split a block's leaves off into a new block
		i := rng.Intn(len(bs))
		if len(bs[i].Leaves) < 2 && !((bs[i].Root || bs[i].Join) && len(bs[i].Leaves) == 1) {
			return false
		}
		k := 1
		if len(bs[i].Leaves) > 1 {
			k = 1 + rng.Intn(len(bs[i].Leaves)-1)
		}
		var moved []int
		for n := 0; n < k; n++ {
			moved = insertSorted(moved, takeRandom(rng, &bs[i].Leaves))
		}
		nb := mapping.ForkJoinBlock{Leaves: moved, Assignment: mapping.Assignment{Mode: mapping.Replicated}}
		if len(bs[i].Procs) >= 2 {
			nb.Procs = []int{takeRandom(rng, &bs[i].Procs)}
		} else if len(free) > 0 {
			nb.Procs = []int{takeRandom(rng, &free)}
		} else {
			return false
		}
		m.Blocks = append(bs, nb)
	case 4: // grow a block with a free processor
		if len(free) == 0 {
			return false
		}
		i := rng.Intn(len(bs))
		bs[i].Procs = insertSorted(bs[i].Procs, takeRandom(rng, &free))
	case 5: // shrink a block, freeing a processor
		i := rng.Intn(len(bs))
		if len(bs[i].Procs) < 2 {
			return false
		}
		takeRandom(rng, &bs[i].Procs)
	case 6: // move a processor between blocks
		if len(bs) < 2 {
			return false
		}
		a, b := rng.Intn(len(bs)), rng.Intn(len(bs))
		if a == b || len(bs[a].Procs) < 2 {
			return false
		}
		bs[b].Procs = insertSorted(bs[b].Procs, takeRandom(rng, &bs[a].Procs))
	case 7: // swap processors between blocks
		if len(bs) < 2 {
			return false
		}
		a, b := rng.Intn(len(bs)), rng.Intn(len(bs))
		if a == b {
			return false
		}
		qa, qb := takeRandom(rng, &bs[a].Procs), takeRandom(rng, &bs[b].Procs)
		bs[a].Procs = insertSorted(bs[a].Procs, qb)
		bs[b].Procs = insertSorted(bs[b].Procs, qa)
	default: // toggle a block's mode
		if !allowDP {
			return false
		}
		i := rng.Intn(len(bs))
		if !forkJoinDPLegal(bs[i]) {
			return false
		}
		if bs[i].Mode == mapping.Replicated {
			bs[i].Mode = mapping.DataParallel
		} else {
			bs[i].Mode = mapping.Replicated
		}
	}
	return true
}
