package store

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// rec returns a representative job record.
func rec(id, status string) JobRecord {
	return JobRecord{
		ID:        id,
		Kind:      "pareto",
		Status:    status,
		Client:    "tenant-a",
		Request:   json.RawMessage(`{"kind":"pareto"}`),
		CreatedMs: 1000,
		Done:      3,
		Total:     9,
		Lease:     &Lease{Owner: "srv-1", ExpiresMs: 2000},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	job := rec("job-1", "running")
	cases := []Record{
		{V: 1, Type: RecordJob, Job: &job},
		{V: 1, Type: RecordPoint, ID: "job-1", Point: json.RawMessage(`{"period":2}`)},
		{V: 1, Type: RecordJobDelete, ID: "job-1"},
		{V: 1, Type: RecordResult, Key: EncodeKey("\x00binary\xffkey"), Result: json.RawMessage(`{"period":2}`)},
	}
	for _, want := range cases {
		line, err := EncodeRecord(want)
		if err != nil {
			t.Fatalf("%s: encode: %v", want.Type, err)
		}
		got, err := DecodeRecord(line)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		a, _ := json.Marshal(want)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Errorf("%s: round trip %s != %s", want.Type, b, a)
		}
	}
}

func TestRecordKeyRoundTrip(t *testing.T) {
	for _, fp := range []string{"", "plain", "\x00\x01\xfe\xff", "P\x03\x00\x00\x00"} {
		key := EncodeKey(fp)
		got, err := DecodeKey(key)
		if err != nil || got != fp {
			t.Errorf("key round trip of %q: got %q, %v", fp, got, err)
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	job := rec("job-1", "running")
	okLine, _ := EncodeRecord(Record{V: 1, Type: RecordJob, Job: &job})
	cases := map[string]string{
		"empty":               "",
		"not json":            "nope",
		"wrong version":       `{"v":2,"type":"jobdel","id":"j"}`,
		"missing version":     `{"type":"jobdel","id":"j"}`,
		"unknown type":        `{"v":1,"type":"frob","id":"j"}`,
		"unknown field":       `{"v":1,"type":"jobdel","id":"j","extra":1}`,
		"trailing data":       strings.TrimSuffix(string(okLine), "\n") + ` {"v":1}`,
		"job without record":  `{"v":1,"type":"job"}`,
		"job with empty id":   `{"v":1,"type":"job","job":{"id":"","kind":"solve","status":"queued","createdMs":1}}`,
		"job with foreign":    `{"v":1,"type":"job","job":{"id":"j","kind":"solve","status":"queued","createdMs":1},"key":"aaaa"}`,
		"point without id":    `{"v":1,"type":"point","point":{}}`,
		"point without point": `{"v":1,"type":"point","id":"j"}`,
		"jobdel without id":   `{"v":1,"type":"jobdel"}`,
		"result bad key":      `{"v":1,"type":"result","key":"!!!","result":{}}`,
		"result without key":  `{"v":1,"type":"result","result":{}}`,
	}
	for name, line := range cases {
		if _, err := DecodeRecord([]byte(line)); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		}
	}
}

// conformance exercises the Store contract shared by every
// implementation.
func conformance(t *testing.T, s Store) {
	t.Helper()
	if st := s.Stats(); st.Jobs != 0 || st.Results != 0 {
		t.Fatalf("fresh store stats = %+v", st)
	}

	// Jobs: upsert, get, list order, append points, delete.
	if err := s.PutJob(rec("job-1", "queued")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(rec("job-2", "running")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetJob("job-1")
	if err != nil || !ok || got.ID != "job-1" || got.Status != "queued" || got.Lease == nil || got.Lease.Owner != "srv-1" {
		t.Fatalf("GetJob = %+v, %v, %v", got, ok, err)
	}
	if _, ok, err := s.GetJob("nope"); ok || err != nil {
		t.Fatalf("unknown job: ok=%v err=%v", ok, err)
	}
	if err := s.AppendFrontPoint("job-2", json.RawMessage(`{"period":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFrontPoint("job-2", json.RawMessage(`{"period":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFrontPoint("ghost", json.RawMessage(`{}`)); err == nil {
		t.Error("appending to an unknown job succeeded")
	}
	got, _, _ = s.GetJob("job-2")
	if len(got.Front) != 2 || string(got.Front[1]) != `{"period":2}` {
		t.Fatalf("front = %v", got.Front)
	}
	// Upsert replaces the whole record, including the front.
	upd := rec("job-2", "done")
	upd.FinishedMs = 3000
	upd.Lease = nil
	upd.Front = got.Front
	if err := s.PutJob(upd); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.GetJob("job-2")
	if got.Status != "done" || got.Lease != nil || len(got.Front) != 2 {
		t.Fatalf("after upsert: %+v", got)
	}
	list, err := s.ListJobs()
	if err != nil || len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-2" {
		t.Fatalf("ListJobs = %+v, %v", list, err)
	}
	if err := s.DeleteJob("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob("job-1"); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok, _ := s.GetJob("job-1"); ok {
		t.Error("deleted job still stored")
	}

	// Results.
	if _, ok, err := s.GetResult("k1"); ok || err != nil {
		t.Fatalf("unknown result: ok=%v err=%v", ok, err)
	}
	if err := s.PutResult("k1", json.RawMessage(`{"period":7}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("k1", json.RawMessage(`{"period":8}`)); err != nil {
		t.Fatal(err)
	}
	res, ok, err := s.GetResult("k1")
	if err != nil || !ok || string(res) != `{"period":8}` {
		t.Fatalf("GetResult = %s, %v, %v", res, ok, err)
	}
	if st := s.Stats(); st.Jobs != 1 || st.Results != 1 {
		t.Errorf("stats = %+v, want 1 job, 1 result", st)
	}

	// Returned records are isolated from the store.
	got, _, _ = s.GetJob("job-2")
	got.Front[0] = json.RawMessage(`"mutated"`)
	again, _, _ := s.GetJob("job-2")
	if string(again.Front[0]) == `"mutated"` {
		t.Error("store shares memory with returned records")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(rec("job-9", "queued")); err == nil {
		t.Error("PutJob on a closed store succeeded")
	}
}

func TestMemStoreConformance(t *testing.T) { conformance(t, Mem()) }

func TestDiskStoreConformance(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, d)
}

// TestMemStoreBounds: the in-memory store evicts oldest-terminal jobs
// and FIFO results at its caps instead of growing without bound.
func TestMemStoreBounds(t *testing.T) {
	m := Mem()
	for i := 0; i < memMaxJobs+10; i++ {
		r := rec(jobID(i), "done")
		if err := m.PutJob(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Jobs != memMaxJobs {
		t.Errorf("jobs = %d, want capped at %d", st.Jobs, memMaxJobs)
	}
	if _, ok, _ := m.GetJob(jobID(0)); ok {
		t.Error("oldest terminal job not evicted")
	}
	if _, ok, _ := m.GetJob(jobID(memMaxJobs + 9)); !ok {
		t.Error("newest job missing")
	}
	for i := 0; i < memMaxResults+10; i++ {
		if err := m.PutResult(jobID(i), json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Results != memMaxResults {
		t.Errorf("results = %d, want capped at %d", st.Results, memMaxResults)
	}
	if _, ok, _ := m.GetResult(jobID(0)); ok {
		t.Error("oldest result not evicted")
	}
}

func jobID(i int) string { return fmt.Sprintf("job-%d", i) }
