package store

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"

	"repliflow/internal/instance"
)

// RecordVersion is the current store record format version. Decoders
// accept exactly this version: the format is an implementation detail of
// one deployment's store directory, not a compatibility surface, so a
// version bump means "rebuild the store" rather than "migrate in place".
const RecordVersion = 1

// Record types carried by Record.Type.
const (
	// RecordJob upserts the embedded JobRecord wholesale.
	RecordJob = "job"
	// RecordPoint appends one Pareto front point to the job named by ID.
	RecordPoint = "point"
	// RecordJobDelete removes the job named by ID.
	RecordJobDelete = "jobdel"
	// RecordResult stores Result under the fingerprint Key.
	RecordResult = "result"
)

// Record is one line of the store's append-only NDJSON log (and the
// element type of snapshot files): a versioned, typed mutation. Exactly
// the fields of its type may be set — DecodeRecord rejects everything
// else, so a corrupted or truncated line can never be half-applied.
type Record struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	// Job is the full record of a RecordJob mutation.
	Job *JobRecord `json:"job,omitempty"`
	// ID names the target job of RecordPoint and RecordJobDelete.
	ID string `json:"id,omitempty"`
	// Point is the appended front point of a RecordPoint mutation.
	Point json.RawMessage `json:"point,omitempty"`
	// Key is the base64 (raw URL alphabet) engine fingerprint of a
	// RecordResult mutation — fingerprints are arbitrary bytes, JSON
	// strings are not.
	Key string `json:"key,omitempty"`
	// Result is the stored solution document of a RecordResult mutation.
	Result json.RawMessage `json:"result,omitempty"`
}

// EncodeKey renders an engine fingerprint (arbitrary bytes) as a
// RecordResult key.
func EncodeKey(fingerprint string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(fingerprint))
}

// DecodeKey inverts EncodeKey.
func DecodeKey(key string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(key)
	if err != nil {
		return "", fmt.Errorf("store: bad result key %q: %w", key, err)
	}
	return string(b), nil
}

// EncodeRecord renders a record as one newline-terminated log line.
func EncodeRecord(rec Record) ([]byte, error) {
	if err := rec.validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeRecord parses one log line strictly (instance.DecodeStrict
// rules): unknown fields, version mismatches, type/field inconsistencies
// and trailing garbage are all errors, so a torn or corrupted line is
// detected rather than applied.
func DecodeRecord(line []byte) (Record, error) {
	var rec Record
	if err := instance.DecodeStrict(bytes.NewReader(line), &rec); err != nil {
		return Record{}, fmt.Errorf("store: decoding record: %w", err)
	}
	if err := rec.validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// validate enforces the per-type field contract shared by the encoder
// and decoder.
func (rec Record) validate() error {
	if rec.V != RecordVersion {
		return fmt.Errorf("store: record version %d, want %d", rec.V, RecordVersion)
	}
	switch rec.Type {
	case RecordJob:
		if rec.Job == nil {
			return fmt.Errorf("store: %q record without job", rec.Type)
		}
		if rec.Job.ID == "" {
			return fmt.Errorf("store: %q record with empty job id", rec.Type)
		}
		if rec.ID != "" || rec.Point != nil || rec.Key != "" || rec.Result != nil {
			return fmt.Errorf("store: %q record with foreign fields", rec.Type)
		}
	case RecordPoint:
		if rec.ID == "" || len(rec.Point) == 0 {
			return fmt.Errorf("store: %q record needs id and point", rec.Type)
		}
		if !json.Valid(rec.Point) {
			return fmt.Errorf("store: %q record with invalid point JSON", rec.Type)
		}
		if rec.Job != nil || rec.Key != "" || rec.Result != nil {
			return fmt.Errorf("store: %q record with foreign fields", rec.Type)
		}
	case RecordJobDelete:
		if rec.ID == "" {
			return fmt.Errorf("store: %q record needs id", rec.Type)
		}
		if rec.Job != nil || rec.Point != nil || rec.Key != "" || rec.Result != nil {
			return fmt.Errorf("store: %q record with foreign fields", rec.Type)
		}
	case RecordResult:
		if rec.Key == "" || len(rec.Result) == 0 {
			return fmt.Errorf("store: %q record needs key and result", rec.Type)
		}
		if _, err := DecodeKey(rec.Key); err != nil {
			return err
		}
		if !json.Valid(rec.Result) {
			return fmt.Errorf("store: %q record with invalid result JSON", rec.Type)
		}
		if rec.Job != nil || rec.ID != "" || rec.Point != nil {
			return fmt.Errorf("store: %q record with foreign fields", rec.Type)
		}
	default:
		return fmt.Errorf("store: unknown record type %q", rec.Type)
	}
	return nil
}
