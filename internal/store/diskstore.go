package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// storeFile is the single data file of a DiskStore directory.
const storeFile = "store.ndjson"

// compactEvery bounds log growth: after this many appended records the
// log is rewritten to one record per live job/result (plus the header).
const compactEvery = 4096

// DiskStore is the local-disk Store behind wfserve -store-dir: one
// directory holding a single append-only NDJSON log (store.ndjson) of
// versioned records, periodically compacted in place via an atomic
// tmp-file rename. Every mutation appends one line; the full state is
// rebuilt by replaying the log on Open.
//
// Crash safety: appends are single write(2) calls of whole lines, so a
// process killed mid-write leaves at most one torn final line, which
// Open detects (strict per-line decoding) and truncates away — every
// record before it stands. Compaction replaces the file only after the
// replacement is fsynced, so a crash mid-compaction leaves either the
// old or the new file, never a mix. The log is not fsynced per append:
// a kill -9 loses nothing (the page cache survives the process), only a
// whole-machine crash can lose the most recent appends.
//
// A DiskStore assumes a single writing process at a time — replicas
// share work by taking over a directory after its owner dies (leases +
// the reaper), not by concurrent appends. Network backends relax this
// behind the same interface.
type DiskStore struct {
	mu     sync.Mutex
	closed bool
	path   string
	log    *os.File
	// appended counts records written since the last compaction.
	appended int

	jobs    map[string]JobRecord
	order   []string
	results map[string]json.RawMessage
	resOrd  []string
}

// headerLine is the first line of every store file: a format marker
// ("wfstore/v1") that identifies the file before any record is decoded.
var headerLine = []byte(`"wfstore/v1"` + "\n")

// OpenDisk opens (creating if necessary) the store directory and
// replays its log. A torn final line — the mark of a process killed
// mid-append — is dropped and truncated away; corruption anywhere else
// is an error, since silently skipping committed records would resurrect
// work the dead process had already completed differently.
func OpenDisk(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	d := &DiskStore{
		path:    filepath.Join(dir, storeFile),
		jobs:    make(map[string]JobRecord),
		results: make(map[string]json.RawMessage),
	}
	if err := d.replay(); err != nil {
		return nil, err
	}
	// Compact on open: the rewritten log starts at one record per live
	// entry, and the replayed (possibly truncated) tail is made durable.
	if err := d.compactLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// replay loads the log into the in-memory index, truncating a torn tail.
func (d *DiskStore) replay() error {
	data, err := os.ReadFile(d.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", d.path, err)
	}
	offset := 0
	for lineNo := 1; offset < len(data); lineNo++ {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// No terminator: the final append was torn mid-line. Drop it.
			break
		}
		line := data[offset : offset+nl]
		if lineNo == 1 {
			if !bytes.Equal(line, bytes.TrimSuffix(headerLine, []byte("\n"))) {
				return fmt.Errorf("store: %s: missing wfstore/v1 header", d.path)
			}
			offset += nl + 1
			continue
		}
		rec, err := DecodeRecord(line)
		if err != nil {
			if offset+nl+1 == len(data) {
				// The final line is complete but undecodable: a torn write
				// that happened to include the newline. Drop it too.
				break
			}
			return fmt.Errorf("store: %s line %d: %w", d.path, lineNo, err)
		}
		if err := d.apply(rec); err != nil {
			return fmt.Errorf("store: %s line %d: %w", d.path, lineNo, err)
		}
		offset += nl + 1
	}
	return nil
}

// apply folds one record into the in-memory index.
func (d *DiskStore) apply(rec Record) error {
	switch rec.Type {
	case RecordJob:
		job := *rec.Job
		if _, ok := d.jobs[job.ID]; !ok {
			d.order = append(d.order, job.ID)
		}
		d.jobs[job.ID] = job
	case RecordPoint:
		job, ok := d.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("point for unknown job %q", rec.ID)
		}
		job.Front = append(job.Front, rec.Point)
		d.jobs[rec.ID] = job
	case RecordJobDelete:
		if _, ok := d.jobs[rec.ID]; ok {
			delete(d.jobs, rec.ID)
			for i, id := range d.order {
				if id == rec.ID {
					d.order = append(d.order[:i], d.order[i+1:]...)
					break
				}
			}
		}
	case RecordResult:
		key, err := DecodeKey(rec.Key)
		if err != nil {
			return err
		}
		if _, ok := d.results[key]; !ok {
			d.resOrd = append(d.resOrd, key)
		}
		d.results[key] = rec.Result
	}
	return nil
}

// compactLocked rewrites the log to the current state — header, one job
// record per job in creation order, one result record per key in
// insertion order — fsyncs it, atomically renames it into place and
// reopens the append handle. Callers hold mu (or own the store
// exclusively, as Open does).
func (d *DiskStore) compactLocked() error {
	tmp := d.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	w := bytes.NewBuffer(nil)
	w.Write(headerLine)
	for _, id := range d.order {
		job := d.jobs[id]
		line, err := EncodeRecord(Record{V: RecordVersion, Type: RecordJob, Job: &job})
		if err != nil {
			f.Close()
			return err
		}
		w.Write(line)
	}
	for _, key := range d.resOrd {
		line, err := EncodeRecord(Record{V: RecordVersion, Type: RecordResult, Key: EncodeKey(key), Result: d.results[key]})
		if err != nil {
			f.Close()
			return err
		}
		w.Write(line)
	}
	if _, err := f.Write(w.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := os.Rename(tmp, d.path); err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	if d.log != nil {
		d.log.Close() //nolint:errcheck // replaced below
	}
	d.log, err = os.OpenFile(d.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening log: %w", err)
	}
	d.appended = 0
	return nil
}

// appendLocked writes one record to the log, compacting when due.
func (d *DiskStore) appendLocked(rec Record) error {
	line, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := d.log.Write(line); err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	d.appended++
	if d.appended >= compactEvery {
		return d.compactLocked()
	}
	return nil
}

// PutJob implements Store.
func (d *DiskStore) PutJob(rec JobRecord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	rec = rec.clone()
	if _, ok := d.jobs[rec.ID]; !ok {
		d.order = append(d.order, rec.ID)
	}
	d.jobs[rec.ID] = rec
	return d.appendLocked(Record{V: RecordVersion, Type: RecordJob, Job: &rec})
}

// AppendFrontPoint implements Store.
func (d *DiskStore) AppendFrontPoint(id string, point json.RawMessage) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	job, ok := d.jobs[id]
	if !ok {
		return fmt.Errorf("store: appending point to unknown job %q", id)
	}
	point = cloneRaw(point)
	job.Front = append(job.Front, point)
	d.jobs[id] = job
	return d.appendLocked(Record{V: RecordVersion, Type: RecordPoint, ID: id, Point: point})
}

// GetJob implements Store.
func (d *DiskStore) GetJob(id string) (JobRecord, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return JobRecord{}, false, errClosed
	}
	rec, ok := d.jobs[id]
	if !ok {
		return JobRecord{}, false, nil
	}
	return rec.clone(), true, nil
}

// ListJobs implements Store.
func (d *DiskStore) ListJobs() ([]JobRecord, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errClosed
	}
	out := make([]JobRecord, 0, len(d.jobs))
	for _, id := range d.order {
		if rec, ok := d.jobs[id]; ok {
			out = append(out, rec.clone())
		}
	}
	return out, nil
}

// DeleteJob implements Store.
func (d *DiskStore) DeleteJob(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if _, ok := d.jobs[id]; !ok {
		return nil
	}
	delete(d.jobs, id)
	for i, jid := range d.order {
		if jid == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return d.appendLocked(Record{V: RecordVersion, Type: RecordJobDelete, ID: id})
}

// PutResult implements Store.
func (d *DiskStore) PutResult(key string, result json.RawMessage) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	result = cloneRaw(result)
	if _, ok := d.results[key]; !ok {
		d.resOrd = append(d.resOrd, key)
	}
	d.results[key] = result
	return d.appendLocked(Record{V: RecordVersion, Type: RecordResult, Key: EncodeKey(key), Result: result})
}

// GetResult implements Store.
func (d *DiskStore) GetResult(key string) (json.RawMessage, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, errClosed
	}
	res, ok := d.results[key]
	if !ok {
		return nil, false, nil
	}
	return cloneRaw(res), true, nil
}

// Stats implements Store.
func (d *DiskStore) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Jobs: len(d.jobs), Results: len(d.results)}
}

// Close implements Store: the log is compacted (which fsyncs) and
// released.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.compactLocked()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}
