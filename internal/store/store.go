// Package store is the pluggable persistence layer behind wfserve's
// async jobs and the engine's fingerprint-keyed solve results.
//
// A Store holds two kinds of durable state:
//
//   - Job records: the lifecycle of every /v1/jobs job — its original
//     request, status, lease, progress counters and terminal results —
//     written through on each transition so a restarted (or second)
//     replica can resume interrupted work and serve what the dead
//     process already proved. Pareto front points are appended one at a
//     time as the sweep proves them, so a crash loses at most the point
//     in flight, never the prefix.
//
//   - Solve results: instance.SolutionJSON documents keyed by the
//     engine's compact binary fingerprint (engine.Fingerprint). The
//     engine consults the store before running an expensive search and
//     writes every completed NP-hard result back, so a fleet sharing a
//     store never re-proves what a sibling (or a previous incarnation)
//     already solved. Polynomial results are deliberately not stored:
//     re-deriving them costs microseconds, less than the lookup.
//
// Two implementations ship today: MemStore (bounded in-memory maps, the
// default — behaviorally the pre-durability wfserve) and DiskStore (a
// single directory holding a snapshot plus an append-only NDJSON log,
// wfserve -store-dir). The interface is deliberately small and
// coarse-grained so network backends (Redis, S3) can slot in behind it
// without touching the server.
//
// The on-disk record format is versioned and documented in
// docs/wire-format.md ("Store files"); DecodeRecord is the strict
// decoder CI fuzzes (FuzzDecodeStoreRecord).
package store

import "encoding/json"

// Store persists jobs and fingerprint-keyed solve results. All methods
// are safe for concurrent use. Implementations must treat the
// json.RawMessage payloads as opaque: the server owns the job wire
// format, the engine owns the fingerprint.
type Store interface {
	// PutJob upserts a job record wholesale, replacing any previous
	// record (including its front) under the same ID.
	PutJob(rec JobRecord) error
	// AppendFrontPoint appends one proven Pareto point to the job's
	// front. Appending to an unknown job is an error.
	AppendFrontPoint(id string, point json.RawMessage) error
	// GetJob returns the stored record for id, with ok false when no
	// such job is stored.
	GetJob(id string) (rec JobRecord, ok bool, err error)
	// ListJobs returns every stored job record in creation order.
	ListJobs() ([]JobRecord, error)
	// DeleteJob removes a job record; deleting an unknown id is a no-op.
	DeleteJob(id string) error

	// PutResult stores a solve result under the engine fingerprint key.
	PutResult(key string, result json.RawMessage) error
	// GetResult returns the result stored under key, with ok false when
	// the key is unknown.
	GetResult(key string) (result json.RawMessage, ok bool, err error)

	// Stats reports the stored record counts (for /metrics).
	Stats() Stats
	// Close flushes and releases the store. Using a closed store is an
	// error.
	Close() error
}

// Stats is a point-in-time count of stored records.
type Stats struct {
	Jobs    int
	Results int
}

// Lease marks a non-terminal job as owned by one server process until
// ExpiresMs (unix milliseconds). A running owner renews its lease ahead
// of expiry; a lease left to expire marks the work orphaned, and the
// reaper of any replica sharing the store may adopt and re-run it. The
// store itself never inspects clocks — lease arithmetic is the caller's.
type Lease struct {
	Owner     string `json:"owner"`
	ExpiresMs int64  `json:"expiresMs"`
}

// JobRecord is the durable form of one async job. Payload fields
// (Request, Solution, Solutions, Front, Error) hold the server's wire
// JSON verbatim, so the store stays decoupled from the wire types and a
// record survives wire-format additions it does not understand.
type JobRecord struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	// Client is the submitting tenant; recovery re-runs the job under
	// the same identity in the fair queue.
	Client string `json:"client,omitempty"`
	// Request is the original JobRequest body, re-runnable as submitted.
	Request json.RawMessage `json:"request,omitempty"`
	// CreatedMs and FinishedMs are unix-millisecond timestamps;
	// FinishedMs is zero on non-terminal records.
	CreatedMs  int64 `json:"createdMs"`
	FinishedMs int64 `json:"finishedMs,omitempty"`
	// Done and Total mirror the job's progress counters at the last
	// write-through.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Lease is present on non-terminal records claimed by a live owner.
	Lease *Lease `json:"lease,omitempty"`

	Solution  json.RawMessage   `json:"solution,omitempty"`
	Solutions []json.RawMessage `json:"solutions,omitempty"`
	Front     []json.RawMessage `json:"front,omitempty"`
	Error     json.RawMessage   `json:"error,omitempty"`
}

// Terminal reports whether the record's status is a terminal one. The
// status strings are the server's job statuses; the store only needs to
// know which ones mean "no live owner expected".
func (r JobRecord) Terminal() bool {
	switch r.Status {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// clone returns a deep copy of the record so callers mutating a returned
// record (or the caller's input being reused) cannot corrupt the store.
func (r JobRecord) clone() JobRecord {
	c := r
	c.Request = cloneRaw(r.Request)
	c.Solution = cloneRaw(r.Solution)
	c.Error = cloneRaw(r.Error)
	if r.Lease != nil {
		l := *r.Lease
		c.Lease = &l
	}
	if r.Solutions != nil {
		c.Solutions = make([]json.RawMessage, len(r.Solutions))
		for i, s := range r.Solutions {
			c.Solutions[i] = cloneRaw(s)
		}
	}
	if r.Front != nil {
		c.Front = make([]json.RawMessage, len(r.Front))
		for i, p := range r.Front {
			c.Front[i] = cloneRaw(p)
		}
	}
	return c
}

func cloneRaw(m json.RawMessage) json.RawMessage {
	if m == nil {
		return nil
	}
	return append(json.RawMessage(nil), m...)
}
