package store

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Bounds of the in-memory store. MemStore is the default Store of a
// wfserve without -store-dir: it exists so the server's write-through
// path is uniform (evicted-but-finished jobs stay readable, repeated
// hard solves stay answered) while memory stays bounded — a process
// restart still loses everything, exactly the pre-durability behavior.
const (
	memMaxJobs    = 1024
	memMaxResults = 8192
)

// MemStore is the bounded in-memory Store. Construct with Mem.
type MemStore struct {
	mu      sync.Mutex
	closed  bool
	jobs    map[string]JobRecord
	order   []string // creation order, for listing and eviction
	results map[string]json.RawMessage
	resOrd  []string // insertion order, for eviction
}

// Mem returns an empty in-memory store.
func Mem() *MemStore {
	return &MemStore{
		jobs:    make(map[string]JobRecord),
		results: make(map[string]json.RawMessage),
	}
}

var errClosed = fmt.Errorf("store: closed")

// PutJob implements Store. When the job bound is reached the oldest
// terminal record is evicted; if every record is live the oldest record
// overall is (a pathological state the server's own job bound prevents).
func (m *MemStore) PutJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if _, ok := m.jobs[rec.ID]; !ok {
		if len(m.jobs) >= memMaxJobs {
			m.evictJobLocked()
		}
		m.order = append(m.order, rec.ID)
	}
	m.jobs[rec.ID] = rec.clone()
	return nil
}

// evictJobLocked drops the oldest terminal job, or the oldest job when
// none is terminal.
func (m *MemStore) evictJobLocked() {
	victim := -1
	for i, id := range m.order {
		if m.jobs[id].Terminal() {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	delete(m.jobs, m.order[victim])
	m.order = append(m.order[:victim], m.order[victim+1:]...)
}

// AppendFrontPoint implements Store.
func (m *MemStore) AppendFrontPoint(id string, point json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	rec, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("store: appending point to unknown job %q", id)
	}
	rec.Front = append(rec.Front, cloneRaw(point))
	m.jobs[id] = rec
	return nil
}

// GetJob implements Store.
func (m *MemStore) GetJob(id string) (JobRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobRecord{}, false, errClosed
	}
	rec, ok := m.jobs[id]
	if !ok {
		return JobRecord{}, false, nil
	}
	return rec.clone(), true, nil
}

// ListJobs implements Store.
func (m *MemStore) ListJobs() ([]JobRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	out := make([]JobRecord, 0, len(m.jobs))
	for _, id := range m.order {
		if rec, ok := m.jobs[id]; ok {
			out = append(out, rec.clone())
		}
	}
	return out, nil
}

// DeleteJob implements Store.
func (m *MemStore) DeleteJob(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if _, ok := m.jobs[id]; !ok {
		return nil
	}
	delete(m.jobs, id)
	for i, jid := range m.order {
		if jid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// PutResult implements Store. At the bound the oldest inserted result is
// evicted (plain FIFO: the engine's own cache handles recency, the store
// is the second-level safety net).
func (m *MemStore) PutResult(key string, result json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if _, ok := m.results[key]; !ok {
		if len(m.results) >= memMaxResults {
			delete(m.results, m.resOrd[0])
			m.resOrd = m.resOrd[1:]
		}
		m.resOrd = append(m.resOrd, key)
	}
	m.results[key] = cloneRaw(result)
	return nil
}

// GetResult implements Store.
func (m *MemStore) GetResult(key string) (json.RawMessage, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, errClosed
	}
	res, ok := m.results[key]
	if !ok {
		return nil, false, nil
	}
	return cloneRaw(res), true, nil
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Jobs: len(m.jobs), Results: len(m.results)}
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
