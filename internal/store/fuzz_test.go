package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeStoreRecord fuzzes the store's log-line decoder — the
// surface every byte of a store directory passes through on open. It
// must never panic, and any line it accepts must re-encode to a stable
// canonical form (encode∘decode is a fixpoint), so compaction rewrites
// of replayed state cannot drift from what was on disk.
func FuzzDecodeStoreRecord(f *testing.F) {
	seeds := []string{
		`{"v":1,"type":"job","job":{"id":"job-1","kind":"pareto","status":"running","client":"tenant-a","request":{"kind":"pareto"},"createdMs":1000,"done":3,"total":9,"lease":{"owner":"srv-1","expiresMs":2000}}}`,
		`{"v":1,"type":"job","job":{"id":"job-2","kind":"solve","status":"done","createdMs":1,"finishedMs":2,"solution":{"period":4},"front":[{"period":1},{"period":2}]}}`,
		`{"v":1,"type":"point","id":"job-1","point":{"period":2,"latency":17}}`,
		`{"v":1,"type":"jobdel","id":"job-1"}`,
		`{"v":1,"type":"result","key":"UAMAAAA","result":{"period":2}}`,
		`{"v":1,"type":"result","key":"","result":{}}`,
		`{"v":2,"type":"jobdel","id":"job-1"}`,
		`{"v":1,"type":"frob"}`,
		`{"v":1,"type":"point","id":"job-1","point":{"period":2},"key":"aaaa"}`,
		`{"v":1,"type":"result","key":"!!!","result":{}}`,
		`{"v":1,"type":"job","job":{"id":"","kind":"solve","status":"queued","createdMs":1}}`,
		`{"v":1,"type":"jobdel","id":"job-1"} trailing`,
		`{}`,
		`null`,
		``,
		"\"wfstore/v1\"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeRecord(line)
		if err != nil {
			return // rejected: fine, as long as it does not panic
		}
		enc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoding accepted record: %v\nline: %s", err, line)
		}
		back, err := DecodeRecord(bytes.TrimSuffix(enc, []byte("\n")))
		if err != nil {
			t.Fatalf("re-decoding canonical form: %v\nline: %s", err, enc)
		}
		enc2, err := EncodeRecord(back)
		if err != nil {
			t.Fatalf("encoding is not a fixpoint: %v\nline: %s", err, enc)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form unstable:\nfirst  %s\nsecond %s", enc, enc2)
		}
	})
}
