package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reopen closes the store (when non-nil) and opens the directory again.
func reopen(t *testing.T, d *DiskStore, dir string) *DiskStore {
	t.Helper()
	if d != nil {
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	nd, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

// TestDiskStorePersistence: everything written — job upserts, appended
// front points, results, deletions — survives Close and reopen.
func TestDiskStorePersistence(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutJob(rec("job-1", "running")); err != nil {
		t.Fatal(err)
	}
	if err := d.PutJob(rec("job-2", "queued")); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendFrontPoint("job-1", json.RawMessage(`{"period":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendFrontPoint("job-1", json.RawMessage(`{"period":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteJob("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := d.PutResult("fp-1", json.RawMessage(`{"latency":9}`)); err != nil {
		t.Fatal(err)
	}

	d = reopen(t, d, dir)
	defer d.Close()
	job, ok, err := d.GetJob("job-1")
	if err != nil || !ok {
		t.Fatalf("job-1 after reopen: ok=%v err=%v", ok, err)
	}
	if len(job.Front) != 2 || string(job.Front[0]) != `{"period":1}` || string(job.Front[1]) != `{"period":2}` {
		t.Fatalf("front after reopen = %v", job.Front)
	}
	if _, ok, _ := d.GetJob("job-2"); ok {
		t.Error("deleted job resurrected by reopen")
	}
	res, ok, err := d.GetResult("fp-1")
	if err != nil || !ok || string(res) != `{"latency":9}` {
		t.Fatalf("result after reopen = %s, %v, %v", res, ok, err)
	}
	if st := d.Stats(); st.Jobs != 1 || st.Results != 1 {
		t.Errorf("stats after reopen = %+v", st)
	}
}

// corrupt appends raw bytes to the store file (simulating a torn write
// by a killed process).
func corrupt(t *testing.T, dir string, tail string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, storeFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(tail); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStoreTornTailRecovery: a final line cut mid-write — with or
// without its newline — is dropped on open; every record before it
// stands.
func TestDiskStoreTornTailRecovery(t *testing.T) {
	tails := map[string]string{
		"unterminated line":      `{"v":1,"type":"job","job":{"id":"jo`,
		"terminated garbage":     "{\"v\":1,\"type\":\"job\",\"jo\n",
		"binary garbage":         "\x00\x01\x02partial",
		"valid json wrong shape": "{\"v\":1}\n",
		"half of a point record": `{"v":1,"type":"point","id":"job-1","point":{"per`,
		"empty object line":      "{}\n",
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.PutJob(rec("job-1", "running")); err != nil {
				t.Fatal(err)
			}
			if err := d.AppendFrontPoint("job-1", json.RawMessage(`{"period":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := d.PutResult("fp", json.RawMessage(`{"p":1}`)); err != nil {
				t.Fatal(err)
			}
			// Close without compaction-by-Close would be ideal, but Close
			// compacts; corrupt after it so the torn tail is the last line.
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir, tail)

			nd, err := OpenDisk(dir)
			if err != nil {
				t.Fatalf("open after torn tail: %v", err)
			}
			defer nd.Close()
			job, ok, err := nd.GetJob("job-1")
			if err != nil || !ok || len(job.Front) != 1 {
				t.Fatalf("prefix lost: job=%+v ok=%v err=%v", job, ok, err)
			}
			if _, ok, _ := nd.GetResult("fp"); !ok {
				t.Error("prefix result lost")
			}
		})
	}
}

// TestDiskStoreMidFileCorruptionFails: damage before the tail is not
// silently skipped — committed state must never be partially dropped.
func TestDiskStoreMidFileCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutJob(rec("job-1", "running")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	corrupt(t, dir, "garbage line\n"+`{"v":1,"type":"jobdel","id":"job-1"}`+"\n")
	if _, err := OpenDisk(dir); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestDiskStoreMissingHeaderFails: a store file without the wfstore/v1
// header line is rejected, not misread.
func TestDiskStoreMissingHeaderFails(t *testing.T) {
	dir := t.TempDir()
	line := `{"v":1,"type":"jobdel","id":"job-1"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, storeFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless file: err = %v", err)
	}
}

// TestDiskStoreCompaction: the log is rewritten once enough records
// accumulate, keeping one line per live entry, and the state survives.
func TestDiskStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.PutJob(rec("job-1", "running")); err != nil {
		t.Fatal(err)
	}
	// Overwrite one result key far past the compaction threshold: the
	// log compacts back to a handful of lines.
	for i := 0; i < compactEvery+16; i++ {
		if err := d.PutResult("hot", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, storeFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines > 32 {
		t.Errorf("log has %d lines after compaction, want few", lines)
	}
	res, ok, _ := d.GetResult("hot")
	want := fmt.Sprintf(`{"i":%d}`, compactEvery+15)
	if !ok || string(res) != want {
		t.Errorf("hot result = %s, want %s", res, want)
	}
	if _, ok, _ := d.GetJob("job-1"); !ok {
		t.Error("job lost across compaction")
	}
}
