// Package chains implements the chains-to-chains partitioning problem that
// Benoit & Robert (RR-6308, Section 1) identify as the communication-free
// core of pipeline period minimization without replication: partition an
// array a_1..a_n into at most p consecutive intervals minimizing the
// largest interval sum.
//
// Two classic exact algorithms are provided:
//
//   - Bokhari-style dynamic programming (O(n²·p)), following Bokhari (1988)
//     and Hansen & Lih (1992);
//   - Nicol's probe method: binary search over the finite candidate set of
//     interval sums with a greedy feasibility probe (O(n·p·log n) flavour),
//     following Nicol (1994) and the Pinar & Aykanat (2004) survey.
//
// The package doubles as a baseline in the benchmark harness: on a
// homogeneous platform, mapping each interval to one processor without
// replication yields exactly the chains-to-chains optimum, which Theorem 1
// then beats by replicating.
package chains

import (
	"errors"
	"fmt"

	"repliflow/internal/numeric"
)

// Partition is a division of the array into consecutive intervals: Bounds
// holds the exclusive end index of each interval, so interval k covers
// [Bounds[k-1], Bounds[k]) with an implicit leading 0.
type Partition struct {
	Bounds []int
}

// Intervals returns the number of intervals.
func (p Partition) Intervals() int { return len(p.Bounds) }

// Bottleneck returns the largest interval sum of the partition over a.
func (p Partition) Bottleneck(a []float64) float64 {
	var worst float64
	start := 0
	for _, end := range p.Bounds {
		var sum float64
		for i := start; i < end; i++ {
			sum += a[i]
		}
		if sum > worst {
			worst = sum
		}
		start = end
	}
	return worst
}

// Validate checks the partition covers exactly [0, n) in order with
// non-empty intervals.
func (p Partition) Validate(n int) error {
	if len(p.Bounds) == 0 {
		return errors.New("chains: empty partition")
	}
	prev := 0
	for i, end := range p.Bounds {
		if end <= prev {
			return fmt.Errorf("chains: interval %d is empty or out of order (prev=%d end=%d)", i, prev, end)
		}
		prev = end
	}
	if prev != n {
		return fmt.Errorf("chains: partition covers [0,%d), want [0,%d)", prev, n)
	}
	return nil
}

func validateInput(a []float64, p int) error {
	if len(a) == 0 {
		return errors.New("chains: empty array")
	}
	if p <= 0 {
		return fmt.Errorf("chains: non-positive interval count %d", p)
	}
	for i, v := range a {
		if v < 0 {
			return fmt.Errorf("chains: negative element a[%d]=%v", i, v)
		}
	}
	return nil
}

// DP solves chains-to-chains exactly by dynamic programming: the minimum
// bottleneck of a partition of a into at most p intervals, with an optimal
// partition. Complexity O(n²·p).
func DP(a []float64, p int) (Partition, float64, error) {
	if err := validateInput(a, p); err != nil {
		return Partition{}, 0, err
	}
	n := len(a)
	if p > n {
		p = n
	}
	prefix := make([]float64, n+1)
	for i, v := range a {
		prefix[i+1] = prefix[i] + v
	}
	// best[k][j]: minimum bottleneck partitioning a[0:j] into at most k
	// intervals.
	best := make([][]float64, p+1)
	cut := make([][]int, p+1)
	for k := range best {
		best[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for j := range best[k] {
			best[k][j] = numeric.Inf
		}
	}
	best[0][0] = 0
	for k := 1; k <= p; k++ {
		best[k][0] = 0
		for j := 1; j <= n; j++ {
			for i := k - 1; i < j; i++ {
				if best[k-1][i] > best[k][j] {
					continue
				}
				v := prefix[j] - prefix[i]
				if best[k-1][i] > v {
					v = best[k-1][i]
				}
				if numeric.Less(v, best[k][j]) {
					best[k][j] = v
					cut[k][j] = i
				}
			}
		}
	}
	// Find the best k (more intervals never hurt, but reconstruct from the
	// actual argmin for a tight partition).
	bestK := p
	for k := 1; k <= p; k++ {
		if numeric.Less(best[k][n], best[bestK][n]) {
			bestK = k
		}
	}
	var bounds []int
	j := n
	for k := bestK; k > 0 && j > 0; k-- {
		bounds = append([]int{j}, bounds...)
		j = cut[k][j]
	}
	part := Partition{Bounds: bounds}
	if err := part.Validate(n); err != nil {
		panic("chains: DP produced invalid partition: " + err.Error())
	}
	return part, best[bestK][n], nil
}

// Probe reports whether a can be partitioned into at most p consecutive
// intervals each of sum at most bound, and returns the greedy partition
// when it can. This is Nicol's probe: greedily extend each interval as far
// as the bound allows.
func Probe(a []float64, p int, bound float64) (Partition, bool) {
	n := len(a)
	var bounds []int
	i := 0
	for k := 0; k < p && i < n; k++ {
		var sum float64
		j := i
		for j < n && numeric.LessEq(sum+a[j], bound) {
			sum += a[j]
			j++
		}
		if j == i {
			return Partition{}, false // a single element exceeds the bound
		}
		bounds = append(bounds, j)
		i = j
	}
	if i < n {
		return Partition{}, false
	}
	return Partition{Bounds: bounds}, true
}

// Bisect solves chains-to-chains approximately by real-valued bisection
// between the trivial bounds max(a) and sum(a), in the spirit of Iqbal
// (1991): the returned bottleneck is within eps of the optimum. It serves
// as a baseline contrasting with the exact candidate-set search of Nicol.
func Bisect(a []float64, p int, eps float64) (Partition, float64, error) {
	if err := validateInput(a, p); err != nil {
		return Partition{}, 0, err
	}
	if eps <= 0 {
		return Partition{}, 0, fmt.Errorf("chains: non-positive tolerance %v", eps)
	}
	lo := numeric.MaxFloat(a)
	hi := numeric.SumFloat(a)
	best, ok := Probe(a, p, hi)
	if !ok {
		panic("chains: total sum must be feasible")
	}
	for hi-lo > eps {
		mid := (lo + hi) / 2
		if part, ok := Probe(a, p, mid); ok {
			best = part
			hi = mid
		} else {
			lo = mid
		}
	}
	return best, best.Bottleneck(a), nil
}

// Nicol solves chains-to-chains exactly by binary search over the candidate
// bottleneck values (all interval sums) combined with the greedy Probe.
func Nicol(a []float64, p int) (Partition, float64, error) {
	if err := validateInput(a, p); err != nil {
		return Partition{}, 0, err
	}
	n := len(a)
	cands := make([]float64, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		var sum float64
		for j := i; j < n; j++ {
			sum += a[j]
			cands = append(cands, sum)
		}
	}
	cands = numeric.DedupSorted(cands)
	lo, hi := 0, len(cands)-1
	var best Partition
	bestVal := numeric.Inf
	for lo <= hi {
		mid := (lo + hi) / 2
		if part, ok := Probe(a, p, cands[mid]); ok {
			best = part
			bestVal = cands[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestVal == numeric.Inf {
		panic("chains: no feasible bottleneck (total sum must always be feasible)")
	}
	// The greedy partition may have slack; report the actual bottleneck.
	return best, best.Bottleneck(a), nil
}
