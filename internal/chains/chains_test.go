package chains

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repliflow/internal/numeric"
)

// bruteForce finds the optimal bottleneck by enumerating all partitions.
func bruteForce(a []float64, p int) float64 {
	n := len(a)
	best := numeric.Inf
	var rec func(start, left int, worst float64)
	rec = func(start, left int, worst float64) {
		if start == n {
			if worst < best {
				best = worst
			}
			return
		}
		if left == 0 {
			return
		}
		var sum float64
		for end := start + 1; end <= n; end++ {
			sum += a[end-1]
			w := worst
			if sum > w {
				w = sum
			}
			rec(end, left-1, w)
		}
	}
	rec(0, p, 0)
	return best
}

func TestDPKnownCases(t *testing.T) {
	cases := []struct {
		a    []float64
		p    int
		want float64
	}{
		{[]float64{1, 2, 3, 4}, 2, 6},  // {1,2,3} {4} -> 6
		{[]float64{1, 2, 3, 4}, 4, 4},  // singletons
		{[]float64{1, 2, 3, 4}, 1, 10}, // whole array
		{[]float64{5, 1, 1, 1, 5}, 3, 5},
		{[]float64{14, 4, 2, 4}, 3, 14}, // the Section 2 example without replication
		{[]float64{7}, 3, 7},
	}
	for _, c := range cases {
		part, got, err := DP(c.a, c.p)
		if err != nil {
			t.Fatalf("DP(%v,%d): %v", c.a, c.p, err)
		}
		if !numeric.Eq(got, c.want) {
			t.Errorf("DP(%v,%d) = %v, want %v", c.a, c.p, got, c.want)
		}
		if err := part.Validate(len(c.a)); err != nil {
			t.Errorf("DP(%v,%d) invalid partition: %v", c.a, c.p, err)
		}
		if !numeric.Eq(part.Bottleneck(c.a), got) {
			t.Errorf("reported %v but partition bottleneck is %v", got, part.Bottleneck(c.a))
		}
	}
}

func TestNicolEqualsDPEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(5)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(1 + rng.Intn(20))
		}
		_, dpVal, err := DP(a, p)
		if err != nil {
			t.Fatal(err)
		}
		_, nicolVal, err := Nicol(a, p)
		if err != nil {
			t.Fatal(err)
		}
		bf := bruteForce(a, p)
		if !numeric.Eq(dpVal, bf) {
			t.Fatalf("DP(%v,%d) = %v, brute force %v", a, p, dpVal, bf)
		}
		if !numeric.Eq(nicolVal, bf) {
			t.Fatalf("Nicol(%v,%d) = %v, brute force %v", a, p, nicolVal, bf)
		}
	}
}

func TestProbe(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5}
	if _, ok := Probe(a, 2, 6); ok {
		t.Error("Probe accepted bound 6 with 2 intervals") // best is 8: {3,1,4}{1,5} -> 8... bound 6 needs 3
	}
	part, ok := Probe(a, 3, 6)
	if !ok {
		t.Fatal("Probe rejected feasible bound")
	}
	if err := part.Validate(len(a)); err != nil {
		t.Fatal(err)
	}
	if part.Bottleneck(a) > 6 {
		t.Errorf("bottleneck %v exceeds bound", part.Bottleneck(a))
	}
	// A single element larger than the bound is infeasible at any p.
	if _, ok := Probe(a, 5, 4.9); ok {
		t.Error("Probe accepted bound below max element")
	}
}

func TestBisectWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		p := 1 + rng.Intn(5)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(1 + rng.Intn(30))
		}
		part, got, err := Bisect(a, p, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Validate(n); err != nil {
			t.Fatalf("Bisect invalid partition: %v", err)
		}
		_, exact, err := DP(a, p)
		if err != nil {
			t.Fatal(err)
		}
		if got < exact-1e-9 {
			t.Fatalf("Bisect(%v,%d) = %v beats the exact optimum %v", a, p, got, exact)
		}
		// With integer inputs the bottleneck snaps to the exact optimum
		// once the bisection gap shrinks below 1.
		if got > exact+1e-6 {
			t.Fatalf("Bisect(%v,%d) = %v, exact %v", a, p, got, exact)
		}
	}
}

func TestBisectRejectsBadTolerance(t *testing.T) {
	if _, _, err := Bisect([]float64{1, 2}, 2, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, _, err := Bisect(nil, 2, 1e-6); err == nil {
		t.Error("empty array accepted")
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, _, err := DP(nil, 2); err == nil {
		t.Error("empty array accepted")
	}
	if _, _, err := DP([]float64{1}, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, _, err := DP([]float64{-1}, 1); err == nil {
		t.Error("negative element accepted")
	}
	if _, _, err := Nicol(nil, 1); err == nil {
		t.Error("Nicol empty array accepted")
	}
}

func TestPartitionValidate(t *testing.T) {
	if err := (Partition{Bounds: []int{2, 4}}).Validate(4); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := (Partition{}).Validate(4); err == nil {
		t.Error("empty partition accepted")
	}
	if err := (Partition{Bounds: []int{2, 2, 4}}).Validate(4); err == nil {
		t.Error("empty interval accepted")
	}
	if err := (Partition{Bounds: []int{2}}).Validate(4); err == nil {
		t.Error("short partition accepted")
	}
}

func TestMorePiecesNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(1 + rng.Intn(9))
		}
		prev := numeric.Inf
		for p := 1; p <= n+1; p++ {
			_, v, err := DP(a, p)
			if err != nil || numeric.Greater(v, prev) {
				return false
			}
			prev = v
		}
		// With p >= n the bottleneck is the max element.
		return numeric.Eq(prev, numeric.MaxFloat(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
