package mapping

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// The running example of Section 2: a 4-stage pipeline with weights
// 14, 4, 2, 4.
var example = workflow.NewPipeline(14, 4, 2, 4)

func mustEvalPipeline(t *testing.T, p workflow.Pipeline, pl platform.Platform, m PipelineMapping) Cost {
	t.Helper()
	c, err := EvalPipeline(p, pl, m)
	if err != nil {
		t.Fatalf("EvalPipeline(%v): %v", m, err)
	}
	return c
}

func TestSection2HomogeneousBaseline(t *testing.T) {
	// "mapping S1 to P1, the other three stages to P2, and discarding P3,
	// leads to the best period Tperiod = 14 ... the latency is always 24."
	pl := platform.Homogeneous(3, 1)
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, Replicated, 0),
		NewPipelineInterval(1, 3, Replicated, 1),
	}}
	c := mustEvalPipeline(t, example, pl, m)
	if !numeric.Eq(c.Period, 14) || !numeric.Eq(c.Latency, 24) {
		t.Fatalf("got %v, want period=14 latency=24", c)
	}
}

func TestSection2FullReplication(t *testing.T) {
	// "a new data set can be input to the platform every 24/3 = 8 time
	// steps, and Tperiod = 8" with unchanged latency 24.
	pl := platform.Homogeneous(3, 1)
	c := mustEvalPipeline(t, example, pl, ReplicateAllPipeline(example, pl))
	if !numeric.Eq(c.Period, 8) || !numeric.Eq(c.Latency, 24) {
		t.Fatalf("got %v, want period=8 latency=24", c)
	}
}

func TestSection2PartialReplication(t *testing.T) {
	// "replicate only S1 onto P1 and P2, and assign the other three stages
	// to P3, leading to Tperiod = max(14/2, 4+2+4) = 10" with latency 24.
	pl := platform.Homogeneous(3, 1)
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, Replicated, 0, 1),
		NewPipelineInterval(1, 3, Replicated, 2),
	}}
	c := mustEvalPipeline(t, example, pl, m)
	if !numeric.Eq(c.Period, 10) || !numeric.Eq(c.Latency, 24) {
		t.Fatalf("got %v, want period=10 latency=24", c)
	}
}

func TestSection2FourProcessorReplication(t *testing.T) {
	// "Using a fourth processor P4 we could further replicate the interval
	// S2 to S4, achieving Tperiod = max(7, 5) = 7."
	pl := platform.Homogeneous(4, 1)
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, Replicated, 0, 1),
		NewPipelineInterval(1, 3, Replicated, 2, 3),
	}}
	c := mustEvalPipeline(t, example, pl, m)
	if !numeric.Eq(c.Period, 7) || !numeric.Eq(c.Latency, 24) {
		t.Fatalf("got %v, want period=7 latency=24", c)
	}
}

func TestSection2DataParallelLatency(t *testing.T) {
	// "we can reduce the latency down to Tlatency = 17 by data-parallelizing
	// S1 onto P1 and P2, and assigning the other three stages to P3. ...
	// The period turns out to be the same, namely Tperiod = 10."
	pl := platform.Homogeneous(3, 1)
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, DataParallel, 0, 1),
		NewPipelineInterval(1, 3, Replicated, 2),
	}}
	c := mustEvalPipeline(t, example, pl, m)
	if !numeric.Eq(c.Period, 10) || !numeric.Eq(c.Latency, 17) {
		t.Fatalf("got %v, want period=10 latency=17", c)
	}
}

// The heterogeneous platform of Section 2: s1 = s2 = 2, s3 = s4 = 1.
var hetPlatform = platform.New(2, 2, 1, 1)

func TestSection2HetFullReplication(t *testing.T) {
	// "If we replicate all stages ... we obtain the period
	// Tperiod = 24/(4·1) = 6, which is not optimal."
	c := mustEvalPipeline(t, example, hetPlatform, ReplicateAllPipeline(example, hetPlatform))
	if !numeric.Eq(c.Period, 6) || !numeric.Eq(c.Latency, 24) {
		t.Fatalf("got %v, want period=6 latency=24", c)
	}
}

func TestSection2HetOptimalPeriod(t *testing.T) {
	// "data-parallelize S1 on P1 and P2, and replicate the interval of the
	// remaining three stages onto P3 and P4, leading to the period
	// Tperiod = max(14/(2+2), 10/(2·1)) = 5 ... latency 13.5."
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, DataParallel, 0, 1),
		NewPipelineInterval(1, 3, Replicated, 2, 3),
	}}
	c := mustEvalPipeline(t, example, hetPlatform, m)
	if !numeric.Eq(c.Period, 5) || !numeric.Eq(c.Latency, 13.5) {
		t.Fatalf("got %v, want period=5 latency=13.5", c)
	}
}

func TestSection2HetOptimalLatency(t *testing.T) {
	// "The minimum latency is Tlatency = 14/5 + 10 = 12.8, achieved by
	// data-parallelizing S1 on P1, P2 and P3" with the remaining interval on
	// P4.
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, DataParallel, 0, 1, 2),
		NewPipelineInterval(1, 3, Replicated, 3),
	}}
	c := mustEvalPipeline(t, example, hetPlatform, m)
	if !numeric.Eq(c.Latency, 12.8) {
		t.Fatalf("got %v, want latency=12.8", c)
	}
}

func TestReplicatedDelayUsesSlowestProcessor(t *testing.T) {
	// Replicating on a fast and a slow processor: the delay is governed by
	// the slowest processor, the period divides it by k.
	p := workflow.NewPipeline(12)
	pl := platform.New(4, 2)
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, Replicated, 0, 1),
	}}
	c := mustEvalPipeline(t, p, pl, m)
	if !numeric.Eq(c.Period, 3) { // 12/(2*2)
		t.Errorf("period = %v, want 3", c.Period)
	}
	if !numeric.Eq(c.Latency, 6) { // 12/2
		t.Errorf("latency = %v, want 6", c.Latency)
	}
}

func TestDataParallelUsesSpeedSum(t *testing.T) {
	p := workflow.NewPipeline(12)
	pl := platform.New(4, 2)
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, DataParallel, 0, 1),
	}}
	c := mustEvalPipeline(t, p, pl, m)
	if !numeric.Eq(c.Period, 2) || !numeric.Eq(c.Latency, 2) { // 12/6
		t.Fatalf("got %v, want period=latency=2", c)
	}
}

func TestWholeOnProcessor(t *testing.T) {
	pl := platform.New(1, 3, 2)
	m := WholeOnProcessor(example, 1)
	c := mustEvalPipeline(t, example, pl, m)
	if !numeric.Eq(c.Latency, 8) || !numeric.Eq(c.Period, 8) { // 24/3
		t.Fatalf("got %v, want 8/8", c)
	}
}

func TestValidatePipelineRejections(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	cases := []struct {
		name string
		m    PipelineMapping
	}{
		{"no intervals", PipelineMapping{}},
		{"gap between intervals", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 0, Replicated, 0),
			NewPipelineInterval(2, 3, Replicated, 1),
		}}},
		{"does not start at 0", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(1, 3, Replicated, 0),
		}}},
		{"does not cover all stages", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 2, Replicated, 0),
		}}},
		{"interval beyond last stage", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 4, Replicated, 0),
		}}},
		{"empty interval", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, -1, Replicated, 0),
			NewPipelineInterval(0, 3, Replicated, 1),
		}}},
		{"empty processor set", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 3, Replicated),
		}}},
		{"processor out of range", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 3, Replicated, 7),
		}}},
		{"processor reused across intervals", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 0, Replicated, 0),
			NewPipelineInterval(1, 3, Replicated, 0),
		}}},
		{"processor duplicated within interval", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 3, Replicated, 1, 1),
		}}},
		{"data-parallel multi-stage interval", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 3, DataParallel, 0, 1),
		}}},
		{"unknown mode", PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, 3, Mode(42), 0),
		}}},
	}
	for _, c := range cases {
		if err := ValidatePipeline(example, pl, c.m); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidatePipelineRejectsBadInputs(t *testing.T) {
	good := PipelineMapping{Intervals: []PipelineInterval{NewPipelineInterval(0, 0, Replicated, 0)}}
	if err := ValidatePipeline(workflow.NewPipeline(), platform.Homogeneous(1, 1), good); err == nil {
		t.Error("empty pipeline accepted")
	}
	if err := ValidatePipeline(workflow.NewPipeline(1), platform.New(), good); err == nil {
		t.Error("empty platform accepted")
	}
}

// randomPipelineMapping builds a random valid mapping for property tests.
func randomPipelineMapping(rng *rand.Rand, p workflow.Pipeline, pl platform.Platform, allowDP bool) PipelineMapping {
	n := p.Stages()
	procs := rng.Perm(pl.Processors())
	// Random number of intervals, at most min(n, p).
	q := 1 + rng.Intn(min(n, pl.Processors()))
	// Random cut points.
	cuts := rng.Perm(n - 1)[:q-1]
	bounds := append([]int{}, cuts...)
	sortInts(bounds)
	var m PipelineMapping
	first := 0
	// Distribute processors: each interval gets at least one.
	extra := pl.Processors() - q
	pi := 0
	for i := 0; i < q; i++ {
		last := n - 1
		if i < len(bounds) {
			last = bounds[i]
		}
		take := 1
		if extra > 0 {
			bonus := rng.Intn(extra + 1)
			take += bonus
			extra -= bonus
		}
		mode := Replicated
		if allowDP && first == last && rng.Intn(2) == 0 {
			mode = DataParallel
		}
		m.Intervals = append(m.Intervals, PipelineInterval{
			First: first, Last: last,
			Assignment: Assignment{Procs: procs[pi : pi+take], Mode: mode},
		})
		pi += take
		first = last + 1
	}
	return m
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestRandomMappingsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workflow.RandomPipeline(rng, 1+rng.Intn(6), 9)
		pl := platform.Random(rng, 1+rng.Intn(6), 5)
		m := randomPipelineMapping(rng, p, pl, true)
		return ValidatePipeline(p, pl, m) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodNeverExceedsLatencyProperty(t *testing.T) {
	// For any valid pipeline mapping, each group's period is at most its
	// delay, so T_period <= T_latency.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workflow.RandomPipeline(rng, 1+rng.Intn(6), 9)
		pl := platform.Random(rng, 1+rng.Intn(6), 5)
		m := randomPipelineMapping(rng, p, pl, true)
		c, err := EvalPipeline(p, pl, m)
		if err != nil {
			return false
		}
		return numeric.LessEq(c.Period, c.Latency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationDoesNotChangeLatencyProperty(t *testing.T) {
	// Lemma 2's underlying fact: on a homogeneous platform, growing a
	// replicated group's processor set leaves the latency unchanged and
	// never increases the period.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Homogeneous(2+rng.Intn(4), float64(1+rng.Intn(3)))
		small := PipelineMapping{Intervals: []PipelineInterval{
			NewPipelineInterval(0, p.Stages()-1, Replicated, 0),
		}}
		big := ReplicateAllPipeline(p, pl)
		cs, err1 := EvalPipeline(p, pl, small)
		cb, err2 := EvalPipeline(p, pl, big)
		if err1 != nil || err2 != nil {
			return false
		}
		return numeric.Eq(cs.Latency, cb.Latency) && numeric.LessEq(cb.Period, cs.Period)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataParallelNeverSlowerThanReplicationOnHom(t *testing.T) {
	// Lemma 1's underlying fact: on a homogeneous platform the period of a
	// data-parallel single stage equals the replicated one.
	f := func(stageW uint8, k uint8, s uint8) bool {
		w := float64(stageW%50 + 1)
		kk := int(k%5) + 1
		ss := float64(s%4 + 1)
		p := workflow.NewPipeline(w)
		pl := platform.Homogeneous(kk, ss)
		procs := make([]int, kk)
		for i := range procs {
			procs[i] = i
		}
		rep := PipelineMapping{Intervals: []PipelineInterval{{First: 0, Last: 0, Assignment: Assignment{Procs: procs, Mode: Replicated}}}}
		dp := PipelineMapping{Intervals: []PipelineInterval{{First: 0, Last: 0, Assignment: Assignment{Procs: procs, Mode: DataParallel}}}}
		cr, err1 := EvalPipeline(p, pl, rep)
		cd, err2 := EvalPipeline(p, pl, dp)
		if err1 != nil || err2 != nil {
			return false
		}
		return numeric.Eq(cr.Period, cd.Period) && numeric.LessEq(cd.Latency, cr.Latency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineMappingString(t *testing.T) {
	m := PipelineMapping{Intervals: []PipelineInterval{
		NewPipelineInterval(0, 0, DataParallel, 1, 0),
		NewPipelineInterval(1, 3, Replicated, 2),
	}}
	s := m.String()
	if !strings.Contains(s, "S1 data-parallel on P1,P2") {
		t.Errorf("String missing data-parallel part: %s", s)
	}
	if !strings.Contains(s, "S2..S4 replicated on P3") {
		t.Errorf("String missing replicated part: %s", s)
	}
	if m.UsedProcessors() != 3 {
		t.Errorf("UsedProcessors = %d", m.UsedProcessors())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
