package mapping

import (
	"errors"
	"fmt"
	"strings"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// PipelineInterval maps the consecutive stages First..Last (0-indexed,
// inclusive) onto a processor set.
type PipelineInterval struct {
	First, Last int
	Assignment
}

// PipelineMapping is a partition of a pipeline into consecutive intervals,
// listed in stage order.
type PipelineMapping struct {
	Intervals []PipelineInterval
}

// NewPipelineInterval is a convenience constructor.
func NewPipelineInterval(first, last int, mode Mode, procs ...int) PipelineInterval {
	return PipelineInterval{First: first, Last: last, Assignment: Assignment{Procs: procs, Mode: mode}}
}

// ValidatePipeline checks the structural rules of Section 3.4:
//   - the intervals partition [0, n) consecutively and in order;
//   - processor sets are valid and pairwise disjoint;
//   - a data-parallel interval has length one.
func ValidatePipeline(p workflow.Pipeline, pl platform.Platform, m PipelineMapping) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if len(m.Intervals) == 0 {
		return errors.New("mapping: pipeline mapping has no interval")
	}
	next := 0
	groups := make([]Assignment, 0, len(m.Intervals))
	for i, iv := range m.Intervals {
		if iv.First != next {
			return fmt.Errorf("mapping: interval %d starts at stage %d, want %d", i, iv.First, next)
		}
		if iv.Last < iv.First {
			return fmt.Errorf("mapping: interval %d is empty (first=%d last=%d)", i, iv.First, iv.Last)
		}
		if iv.Last >= p.Stages() {
			return fmt.Errorf("mapping: interval %d ends at stage %d beyond last stage %d", i, iv.Last, p.Stages()-1)
		}
		if err := iv.Assignment.validate(pl); err != nil {
			return fmt.Errorf("interval %d: %w", i, err)
		}
		if iv.Mode == DataParallel && iv.Last != iv.First {
			return fmt.Errorf("mapping: interval %d spans stages %d..%d but only single stages may be data-parallelized in a pipeline", i, iv.First, iv.Last)
		}
		groups = append(groups, iv.Assignment)
		next = iv.Last + 1
	}
	if next != p.Stages() {
		return fmt.Errorf("mapping: intervals cover stages [0,%d), pipeline has %d stages", next, p.Stages())
	}
	return checkDisjoint(groups)
}

// EvalPipeline validates the mapping and returns its period and latency:
// the period is the maximum group period, the latency the sum of group
// delays (Section 3.4).
func EvalPipeline(p workflow.Pipeline, pl platform.Platform, m PipelineMapping) (Cost, error) {
	if err := ValidatePipeline(p, pl, m); err != nil {
		return Cost{}, err
	}
	var c Cost
	for _, iv := range m.Intervals {
		w := p.IntervalWork(iv.First, iv.Last)
		if per := iv.groupPeriod(w, pl); per > c.Period {
			c.Period = per
		}
		c.Latency += iv.groupDelay(w, pl)
	}
	return c, nil
}

// ReplicateAllPipeline maps the whole pipeline as one interval replicated
// onto every processor — the optimal period mapping on homogeneous
// platforms (Theorem 1).
func ReplicateAllPipeline(p workflow.Pipeline, pl platform.Platform) PipelineMapping {
	procs := make([]int, pl.Processors())
	for i := range procs {
		procs[i] = i
	}
	return PipelineMapping{Intervals: []PipelineInterval{
		{First: 0, Last: p.Stages() - 1, Assignment: Assignment{Procs: procs, Mode: Replicated}},
	}}
}

// WholeOnProcessor maps the whole pipeline as one interval onto the single
// processor q — the optimal latency mapping without data-parallelism when q
// is the fastest processor (Theorem 6).
func WholeOnProcessor(p workflow.Pipeline, q int) PipelineMapping {
	return PipelineMapping{Intervals: []PipelineInterval{
		{First: 0, Last: p.Stages() - 1, Assignment: Assignment{Procs: []int{q}, Mode: Replicated}},
	}}
}

// String renders the mapping in a compact human-readable form.
func (m PipelineMapping) String() string {
	parts := make([]string, len(m.Intervals))
	for i, iv := range m.Intervals {
		span := fmt.Sprintf("S%d", iv.First+1)
		if iv.Last != iv.First {
			span = fmt.Sprintf("S%d..S%d", iv.First+1, iv.Last+1)
		}
		parts[i] = fmt.Sprintf("[%s %s on %s]", span, iv.Mode, procsLabel(iv.Procs))
	}
	return strings.Join(parts, " ")
}

// UsedProcessors returns the number of processors enrolled by the mapping.
func (m PipelineMapping) UsedProcessors() int {
	n := 0
	for _, iv := range m.Intervals {
		n += len(iv.Procs)
	}
	return n
}
