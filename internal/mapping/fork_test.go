package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func mustEvalFork(t *testing.T, f workflow.Fork, pl platform.Platform, m ForkMapping) Cost {
	t.Helper()
	c, err := EvalFork(f, pl, m)
	if err != nil {
		t.Fatalf("EvalFork(%v): %v", m, err)
	}
	return c
}

func TestForkSingleBlock(t *testing.T) {
	// Whole fork on one processor: period = latency = total work / speed.
	f := workflow.NewFork(2, 3, 5)
	pl := platform.New(2)
	m := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, []int{0, 1}, Replicated, 0),
	}}
	c := mustEvalFork(t, f, pl, m)
	if !numeric.Eq(c.Period, 5) || !numeric.Eq(c.Latency, 5) { // 10/2
		t.Fatalf("got %v, want 5/5", c)
	}
}

func TestForkReplicateAll(t *testing.T) {
	// Theorem 10's mapping: replicate everything on all processors.
	f := workflow.NewFork(2, 3, 5, 2)
	pl := platform.Homogeneous(3, 1)
	c := mustEvalFork(t, f, pl, ReplicateAllFork(f, pl))
	if !numeric.Eq(c.Period, 4) { // 12/(3*1)
		t.Errorf("period = %v, want 4", c.Period)
	}
	if !numeric.Eq(c.Latency, 12) {
		t.Errorf("latency = %v, want 12", c.Latency)
	}
}

func TestForkFlexibleModelLatency(t *testing.T) {
	// Root block {S0,S1} on P1 (speed 1), leaf block {S2} on P2 (speed 2).
	// rootDone = 2/1 = 2; block 2 delay = 6/2 = 3.
	// latency = max(tmax(1)=5, 2+3=5) = 5; period = max(5, 3) = 5.
	f := workflow.NewFork(2, 3, 6)
	pl := platform.New(1, 2)
	m := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, []int{0}, Replicated, 0),
		NewForkBlock(false, []int{1}, Replicated, 1),
	}}
	c := mustEvalFork(t, f, pl, m)
	if !numeric.Eq(c.Latency, 5) || !numeric.Eq(c.Period, 5) {
		t.Fatalf("got %v, want 5/5", c)
	}
}

func TestForkRootAloneDataParallel(t *testing.T) {
	// S0 alone may be data-parallelized (i=j=0 case of Section 3.4):
	// s0 = 1+3 = 4, so leaf blocks start at 8/4 = 2.
	f := workflow.NewFork(8, 4)
	pl := platform.New(1, 3, 2)
	m := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, nil, DataParallel, 0, 1),
		NewForkBlock(false, []int{0}, Replicated, 2),
	}}
	c := mustEvalFork(t, f, pl, m)
	if !numeric.Eq(c.Latency, 4) { // max(2, 2 + 4/2)
		t.Errorf("latency = %v, want 4", c.Latency)
	}
	if !numeric.Eq(c.Period, 2) { // max(8/4, 4/2)
		t.Errorf("period = %v, want 2", c.Period)
	}
}

func TestForkDataParallelLeafSet(t *testing.T) {
	// A set of independent stages may be data-parallelized together.
	f := workflow.NewFork(2, 3, 5)
	pl := platform.New(2, 1, 3)
	m := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, nil, Replicated, 0),
		NewForkBlock(false, []int{0, 1}, DataParallel, 1, 2),
	}}
	c := mustEvalFork(t, f, pl, m)
	// rootDone = 2/2 = 1; leaf block delay = 8/(1+3) = 2.
	if !numeric.Eq(c.Latency, 3) {
		t.Errorf("latency = %v, want 3", c.Latency)
	}
	if !numeric.Eq(c.Period, 2) { // max(1, 2)
		t.Errorf("period = %v, want 2", c.Period)
	}
}

func TestForkRootReplicatedUsesMinSpeed(t *testing.T) {
	// When the root block is replicated, s0 is the minimum speed of the
	// block (Section 3.4), not the sum.
	f := workflow.NewFork(6, 4)
	pl := platform.New(3, 1, 2)
	m := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, nil, Replicated, 0, 1),
		NewForkBlock(false, []int{0}, Replicated, 2),
	}}
	c := mustEvalFork(t, f, pl, m)
	// s0 = min(3,1) = 1; latency = max(6/1, 6/1 + 4/2) = 8.
	if !numeric.Eq(c.Latency, 8) {
		t.Errorf("latency = %v, want 8", c.Latency)
	}
	// period = max(6/(2*1), 4/2) = 3.
	if !numeric.Eq(c.Period, 3) {
		t.Errorf("period = %v, want 3", c.Period)
	}
}

func TestForkLeaflessGraph(t *testing.T) {
	f := workflow.NewFork(5)
	pl := platform.New(2)
	m := ForkMapping{Blocks: []ForkBlock{NewForkBlock(true, nil, Replicated, 0)}}
	c := mustEvalFork(t, f, pl, m)
	if !numeric.Eq(c.Latency, 2.5) || !numeric.Eq(c.Period, 2.5) {
		t.Fatalf("got %v, want 2.5/2.5", c)
	}
}

func TestValidateForkRejections(t *testing.T) {
	f := workflow.NewFork(2, 3, 5)
	pl := platform.Homogeneous(3, 1)
	cases := []struct {
		name string
		m    ForkMapping
	}{
		{"no blocks", ForkMapping{}},
		{"no root block", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(false, []int{0, 1}, Replicated, 0),
		}}},
		{"two root blocks", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0}, Replicated, 0),
			NewForkBlock(true, []int{1}, Replicated, 1),
		}}},
		{"missing leaf", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0}, Replicated, 0),
		}}},
		{"duplicated leaf", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0, 0}, Replicated, 0),
			NewForkBlock(false, []int{1}, Replicated, 1),
		}}},
		{"leaf out of range", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0, 1, 2}, Replicated, 0),
		}}},
		{"empty non-root block", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0, 1}, Replicated, 0),
			NewForkBlock(false, nil, Replicated, 1),
		}}},
		{"root data-parallel with leaves", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0, 1}, DataParallel, 0, 1),
		}}},
		{"processor reused", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0}, Replicated, 0),
			NewForkBlock(false, []int{1}, Replicated, 0),
		}}},
		{"empty processor set", ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0, 1}, Replicated),
		}}},
	}
	for _, c := range cases {
		if err := ValidateFork(f, pl, c.m); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestForkPeriodNeverExceedsLatency(t *testing.T) {
	// In any fork mapping, the root block's period <= its delay <= latency,
	// and every other block's period <= delay <= w0/s0 + delay <= latency.
	f := func(w0, w1, w2, s1, s2 uint8) bool {
		fk := workflow.NewFork(float64(w0%9+1), float64(w1%9+1), float64(w2%9+1))
		pl := platform.New(float64(s1%4+1), float64(s2%4+1))
		m := ForkMapping{Blocks: []ForkBlock{
			NewForkBlock(true, []int{0}, Replicated, 0),
			NewForkBlock(false, []int{1}, Replicated, 1),
		}}
		c, err := EvalFork(fk, pl, m)
		if err != nil {
			return false
		}
		return numeric.LessEq(c.Period, c.Latency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkMappingString(t *testing.T) {
	m := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, []int{1}, Replicated, 0),
		NewForkBlock(false, []int{0}, DataParallel, 2, 1),
	}}
	s := m.String()
	if !strings.Contains(s, "{S0,S2} replicated on P1") {
		t.Errorf("String missing root block: %s", s)
	}
	if !strings.Contains(s, "{S1} data-parallel on P2,P3") {
		t.Errorf("String missing leaf block: %s", s)
	}
	if m.UsedProcessors() != 3 {
		t.Errorf("UsedProcessors = %d", m.UsedProcessors())
	}
}
