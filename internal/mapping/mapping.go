// Package mapping represents interval-based mappings of pipeline, fork and
// fork-join graphs onto platforms, and evaluates their period and latency
// under the simplified model of Benoit & Robert (RR-6308, Section 3.4).
//
// A mapping partitions the stages into groups (intervals for a pipeline,
// blocks for a fork), assigns a non-empty set of processors to each group,
// and chooses a mode:
//
//   - Replicated: the k processors execute whole data sets round-robin.
//     period = W/(k·min s), traversal delay = W/min s. A single processor
//     is the k=1 special case.
//   - DataParallel: the processors share each single data set.
//     period = delay = W/Σ s. In a pipeline only single stages may be
//     data-parallelized; in a fork any set of independent stages may, and
//     the root S0 only when alone in its block (Section 3.4).
package mapping

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
)

// Mode selects how a group of stages uses its processor set.
type Mode int

const (
	// Replicated processes consecutive data sets round-robin (k=1 means a
	// plain single-processor assignment).
	Replicated Mode = iota
	// DataParallel shares every single data set among the processors.
	DataParallel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Replicated:
		return "replicated"
	case DataParallel:
		return "data-parallel"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Cost carries the two antagonist objectives of the paper.
type Cost struct {
	Period  float64
	Latency float64
}

// Dominates reports whether c is no worse than d on both criteria.
func (c Cost) Dominates(d Cost) bool {
	return numeric.LessEq(c.Period, d.Period) && numeric.LessEq(c.Latency, d.Latency)
}

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("period=%g latency=%g", c.Period, c.Latency)
}

// Assignment binds a processor set and a mode to a group of stages.
type Assignment struct {
	Procs []int
	Mode  Mode
}

// groupPeriod returns the period of a stage group of total weight w under
// the assignment (Section 3.4 formulas).
func (a Assignment) groupPeriod(w float64, pl platform.Platform) float64 {
	switch a.Mode {
	case DataParallel:
		return w / pl.SubsetSpeedSum(a.Procs)
	default:
		return w / (float64(len(a.Procs)) * pl.SubsetMinSpeed(a.Procs))
	}
}

// groupDelay returns the traversal delay (t_max) of a stage group of total
// weight w under the assignment.
func (a Assignment) groupDelay(w float64, pl platform.Platform) float64 {
	switch a.Mode {
	case DataParallel:
		return w / pl.SubsetSpeedSum(a.Procs)
	default:
		return w / pl.SubsetMinSpeed(a.Procs)
	}
}

// validate checks the processor set is non-empty, within range and free of
// duplicates.
func (a Assignment) validate(pl platform.Platform) error {
	if len(a.Procs) == 0 {
		return errors.New("mapping: empty processor set")
	}
	seen := make(map[int]bool, len(a.Procs))
	for _, q := range a.Procs {
		if q < 0 || q >= pl.Processors() {
			return fmt.Errorf("mapping: processor index %d out of range [0,%d)", q, pl.Processors())
		}
		if seen[q] {
			return fmt.Errorf("mapping: processor P%d assigned twice within one group", q+1)
		}
		seen[q] = true
	}
	if a.Mode != Replicated && a.Mode != DataParallel {
		return fmt.Errorf("mapping: unknown mode %d", int(a.Mode))
	}
	return nil
}

func procsLabel(procs []int) string {
	sorted := append([]int(nil), procs...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, q := range sorted {
		parts[i] = fmt.Sprintf("P%d", q+1)
	}
	return strings.Join(parts, ",")
}

// checkDisjoint verifies that no processor appears in two assignments.
func checkDisjoint(groups []Assignment) error {
	used := make(map[int]int)
	for gi, g := range groups {
		for _, q := range g.Procs {
			if prev, ok := used[q]; ok {
				return fmt.Errorf("mapping: processor P%d assigned to groups %d and %d", q+1, prev, gi)
			}
			used[q] = gi
		}
	}
	return nil
}
