package mapping

import (
	"math/rand"
	"testing"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestMutatedMappingsAreRejected injects random single-field corruptions
// into valid mappings and checks that validation catches every structural
// breakage (or that the mutation happened to produce another valid
// mapping, in which case evaluation must still succeed).
func TestMutatedMappingsAreRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		p := workflow.RandomPipeline(rng, 2+rng.Intn(4), 9)
		pl := platform.Random(rng, 2+rng.Intn(4), 5)
		m := randomPipelineMapping(rng, p, pl, true)
		if err := ValidatePipeline(p, pl, m); err != nil {
			t.Fatalf("setup produced invalid mapping: %v", err)
		}
		mutateMapping(rng, &m)
		if err := ValidatePipeline(p, pl, m); err == nil {
			// The mutation may legitimately yield another valid mapping;
			// it must then evaluate without panicking and with positive
			// costs.
			c, err := EvalPipeline(p, pl, m)
			if err != nil {
				t.Fatalf("validated mapping failed to evaluate: %v", err)
			}
			if !numeric.Greater(c.Period, 0) || !numeric.Greater(c.Latency, 0) {
				t.Fatalf("degenerate cost %v for mapping %v", c, m)
			}
		}
	}
}

// mutateMapping corrupts one random aspect of the mapping.
func mutateMapping(rng *rand.Rand, m *PipelineMapping) {
	if len(m.Intervals) == 0 {
		return
	}
	i := rng.Intn(len(m.Intervals))
	switch rng.Intn(6) {
	case 0:
		m.Intervals[i].First += rng.Intn(3) - 1
	case 1:
		m.Intervals[i].Last += rng.Intn(3) - 1
	case 2:
		if len(m.Intervals[i].Procs) > 0 {
			m.Intervals[i].Procs[rng.Intn(len(m.Intervals[i].Procs))] += rng.Intn(5) - 2
		}
	case 3:
		m.Intervals[i].Procs = append(m.Intervals[i].Procs, rng.Intn(8))
	case 4:
		m.Intervals[i].Mode = Mode(rng.Intn(3))
	case 5:
		m.Intervals = append(m.Intervals[:i], m.Intervals[i+1:]...)
	}
}

func TestCostDominates(t *testing.T) {
	a := Cost{Period: 2, Latency: 5}
	b := Cost{Period: 3, Latency: 6}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("Dominates wrong on ordered pair")
	}
	if !a.Dominates(a) {
		t.Fatal("Dominates not reflexive")
	}
	c := Cost{Period: 1, Latency: 7}
	if a.Dominates(c) || c.Dominates(a) {
		t.Fatal("incomparable pair reported dominated")
	}
}

func TestModeString(t *testing.T) {
	if Replicated.String() != "replicated" || DataParallel.String() != "data-parallel" {
		t.Fatal("Mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}
