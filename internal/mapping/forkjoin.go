package mapping

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkJoinBlock maps a set of fork-join stages onto a processor set. At most
// one block has Root set and at most one has Join set; they may be the same
// block (Section 6.3: the interval in charge of S_{n+1} "can either be the
// one in charge of S0 or another one").
type ForkJoinBlock struct {
	Root   bool
	Join   bool
	Leaves []int
	Assignment
}

// ForkJoinMapping partitions the stages of a fork-join graph into blocks.
type ForkJoinMapping struct {
	Blocks []ForkJoinBlock
}

// NewForkJoinBlock is a convenience constructor.
func NewForkJoinBlock(root, join bool, leaves []int, mode Mode, procs ...int) ForkJoinBlock {
	return ForkJoinBlock{Root: root, Join: join, Leaves: leaves, Assignment: Assignment{Procs: procs, Mode: mode}}
}

// weight returns the total computation of the block.
func (b ForkJoinBlock) weight(fj workflow.ForkJoin) float64 {
	var w float64
	if b.Root {
		w += fj.Root
	}
	if b.Join {
		w += fj.Join
	}
	for _, l := range b.Leaves {
		w += fj.Weights[l]
	}
	return w
}

// ValidateForkJoin checks the structural rules extended to fork-join graphs:
//   - exactly one block holds S0 and exactly one holds S_{n+1} (possibly the
//     same block); every leaf appears in exactly one block;
//   - processor sets are valid and pairwise disjoint;
//   - a data-parallel block holding S0 or S_{n+1} must hold that stage alone
//     (both carry dependence relations with every leaf, mirroring the
//     Section 3.4 restriction on S0).
func ValidateForkJoin(fj workflow.ForkJoin, pl platform.Platform, m ForkJoinMapping) error {
	if err := fj.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if len(m.Blocks) == 0 {
		return errors.New("mapping: fork-join mapping has no block")
	}
	rootBlocks, joinBlocks := 0, 0
	seenLeaf := make([]bool, fj.Leaves())
	groups := make([]Assignment, 0, len(m.Blocks))
	for i, b := range m.Blocks {
		if b.Root {
			rootBlocks++
		}
		if b.Join {
			joinBlocks++
		}
		if !b.Root && !b.Join && len(b.Leaves) == 0 {
			return fmt.Errorf("mapping: block %d contains no stage", i)
		}
		for _, l := range b.Leaves {
			if l < 0 || l >= fj.Leaves() {
				return fmt.Errorf("mapping: block %d references leaf %d out of range [0,%d)", i, l, fj.Leaves())
			}
			if seenLeaf[l] {
				return fmt.Errorf("mapping: leaf stage S%d assigned to two blocks", l+1)
			}
			seenLeaf[l] = true
		}
		if err := b.Assignment.validate(pl); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		if b.Mode == DataParallel {
			if b.Root && (len(b.Leaves) > 0 || b.Join) {
				return fmt.Errorf("mapping: block %d data-parallelizes S0 together with other stages", i)
			}
			if b.Join && (len(b.Leaves) > 0 || b.Root) {
				return fmt.Errorf("mapping: block %d data-parallelizes the join stage together with other stages", i)
			}
		}
		groups = append(groups, b.Assignment)
	}
	if rootBlocks != 1 {
		return fmt.Errorf("mapping: %d blocks contain the root stage, want exactly 1", rootBlocks)
	}
	if joinBlocks != 1 {
		return fmt.Errorf("mapping: %d blocks contain the join stage, want exactly 1", joinBlocks)
	}
	for l, ok := range seenLeaf {
		if !ok {
			return fmt.Errorf("mapping: leaf stage S%d not mapped", l+1)
		}
	}
	return checkDisjoint(groups)
}

// EvalForkJoin validates the mapping and returns its period and latency.
//
// The period is the maximum block period, as for forks. The latency uses
// the flexible model with blocks executing their stages in dependence order
// (S0, then leaves, then S_{n+1}):
//
//	rootDone    = w0 / s0
//	leafDone(B) = (w0 + WL(B))/sB           if B is the root block
//	            = rootDone + WL(B)/sB       otherwise
//	T_leafdone  = max(rootDone, max_B leafDone(B))
//	T_latency   = T_leafdone + w_{n+1}/sJ
//
// where sB is the block's delay speed (min speed if replicated, sum of
// speeds if data-parallel), s0 that of the root block and sJ that of the
// join block. Dropping the join stage recovers exactly the fork formula of
// Section 3.4.
func EvalForkJoin(fj workflow.ForkJoin, pl platform.Platform, m ForkJoinMapping) (Cost, error) {
	if err := ValidateForkJoin(fj, pl, m); err != nil {
		return Cost{}, err
	}
	var c Cost
	var rootSpeed, joinSpeed float64
	for _, b := range m.Blocks {
		w := b.weight(fj)
		if per := b.groupPeriod(w, pl); per > c.Period {
			c.Period = per
		}
		speed := pl.SubsetMinSpeed(b.Procs)
		if b.Mode == DataParallel {
			speed = pl.SubsetSpeedSum(b.Procs)
		}
		if b.Root {
			rootSpeed = speed
		}
		if b.Join {
			joinSpeed = speed
		}
	}
	rootDone := fj.Root / rootSpeed
	leafDone := rootDone
	for _, b := range m.Blocks {
		var wl float64
		for _, l := range b.Leaves {
			wl += fj.Weights[l]
		}
		if wl == 0 {
			continue
		}
		speed := pl.SubsetMinSpeed(b.Procs)
		if b.Mode == DataParallel {
			speed = pl.SubsetSpeedSum(b.Procs)
		}
		var done float64
		if b.Root {
			done = (fj.Root + wl) / speed
		} else {
			done = rootDone + wl/speed
		}
		if done > leafDone {
			leafDone = done
		}
	}
	c.Latency = leafDone + fj.Join/joinSpeed
	return c, nil
}

// ReplicateAllForkJoin maps the whole fork-join graph as one block
// replicated onto every processor — optimal for the period on homogeneous
// platforms (Theorem 10 extended in Section 6.3).
func ReplicateAllForkJoin(fj workflow.ForkJoin, pl platform.Platform) ForkJoinMapping {
	procs := make([]int, pl.Processors())
	for i := range procs {
		procs[i] = i
	}
	leaves := make([]int, fj.Leaves())
	for i := range leaves {
		leaves[i] = i
	}
	return ForkJoinMapping{Blocks: []ForkJoinBlock{
		{Root: true, Join: true, Leaves: leaves, Assignment: Assignment{Procs: procs, Mode: Replicated}},
	}}
}

// String renders the mapping in a compact human-readable form.
func (m ForkJoinMapping) String() string {
	parts := make([]string, len(m.Blocks))
	for i, b := range m.Blocks {
		var stages []string
		if b.Root {
			stages = append(stages, "S0")
		}
		sorted := append([]int(nil), b.Leaves...)
		sort.Ints(sorted)
		for _, l := range sorted {
			stages = append(stages, fmt.Sprintf("S%d", l+1))
		}
		if b.Join {
			stages = append(stages, "Sjoin")
		}
		parts[i] = fmt.Sprintf("[{%s} %s on %s]", strings.Join(stages, ","), b.Mode, procsLabel(b.Procs))
	}
	return strings.Join(parts, " ")
}

// UsedProcessors returns the number of processors enrolled by the mapping.
func (m ForkJoinMapping) UsedProcessors() int {
	n := 0
	for _, b := range m.Blocks {
		n += len(b.Procs)
	}
	return n
}
