package mapping

import (
	"fmt"
	"sort"
	"strings"

	"repliflow/internal/workflow"
)

// SPBlock assigns a set of SP steps (indices into SP.Steps) to one
// processor. The SP cost model has no replication or data-parallel mode:
// a block is a plain single-processor assignment, matching the
// communication-free reading of the paper's interval mappings.
type SPBlock struct {
	Proc  int
	Steps []int
}

// SPMapping is the solution mapping of a series-parallel instance. It has
// two shapes:
//
//   - Reduced: the decomposer collapsed the DAG onto one of the three
//     legacy graphs; Reduced names the shape, Order maps canonical stage
//     positions of the reduced graph back to step indices of the SP graph,
//     and exactly one of Pipeline/Fork/ForkJoin carries the legacy mapping
//     (byte-identical to solving the reduced instance directly).
//   - Direct (Reduced == workflow.KindSP): the irreducible DAG was solved
//     in the block model; Blocks partitions the steps over distinct
//     processors.
type SPMapping struct {
	Reduced  workflow.Kind
	Order    []int
	Pipeline *PipelineMapping
	Fork     *ForkMapping
	ForkJoin *ForkJoinMapping
	Blocks   []SPBlock
}

// String renders the mapping in a compact human-readable form.
func (m SPMapping) String() string {
	switch m.Reduced {
	case workflow.KindPipeline:
		if m.Pipeline != nil {
			return fmt.Sprintf("sp->pipeline %v", *m.Pipeline)
		}
	case workflow.KindFork:
		if m.Fork != nil {
			return fmt.Sprintf("sp->fork %v", *m.Fork)
		}
	case workflow.KindForkJoin:
		if m.ForkJoin != nil {
			return fmt.Sprintf("sp->fork-join %v", *m.ForkJoin)
		}
	}
	parts := make([]string, len(m.Blocks))
	for i, b := range m.Blocks {
		steps := make([]string, len(b.Steps))
		sorted := append([]int(nil), b.Steps...)
		sort.Ints(sorted)
		for j, s := range sorted {
			steps[j] = fmt.Sprintf("s%d", s)
		}
		parts[i] = fmt.Sprintf("[{%s} on P%d]", strings.Join(steps, ","), b.Proc+1)
	}
	return strings.Join(parts, " ")
}

// UsedProcessors returns the number of processors enrolled by the mapping.
func (m SPMapping) UsedProcessors() int {
	switch {
	case m.Pipeline != nil:
		return m.Pipeline.UsedProcessors()
	case m.Fork != nil:
		return m.Fork.UsedProcessors()
	case m.ForkJoin != nil:
		return m.ForkJoin.UsedProcessors()
	}
	return len(m.Blocks)
}
