package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func mustEvalForkJoin(t *testing.T, fj workflow.ForkJoin, pl platform.Platform, m ForkJoinMapping) Cost {
	t.Helper()
	c, err := EvalForkJoin(fj, pl, m)
	if err != nil {
		t.Fatalf("EvalForkJoin(%v): %v", m, err)
	}
	return c
}

func TestForkJoinSingleBlock(t *testing.T) {
	fj := workflow.NewForkJoin(2, 4, 3, 5)
	pl := platform.New(2)
	m := ForkJoinMapping{Blocks: []ForkJoinBlock{
		NewForkJoinBlock(true, true, []int{0, 1}, Replicated, 0),
	}}
	c := mustEvalForkJoin(t, fj, pl, m)
	if !numeric.Eq(c.Period, 7) || !numeric.Eq(c.Latency, 7) { // 14/2
		t.Fatalf("got %v, want 7/7", c)
	}
}

func TestForkJoinReplicateAll(t *testing.T) {
	fj := workflow.NewForkJoin(2, 4, 3, 5)
	pl := platform.Homogeneous(2, 1)
	c := mustEvalForkJoin(t, fj, pl, ReplicateAllForkJoin(fj, pl))
	if !numeric.Eq(c.Period, 7) { // 14/(2*1)
		t.Errorf("period = %v, want 7", c.Period)
	}
	if !numeric.Eq(c.Latency, 14) {
		t.Errorf("latency = %v, want 14", c.Latency)
	}
}

func TestForkJoinSeparateJoinBlock(t *testing.T) {
	// Root block {S0,S1} on P1 speed 1; leaf block {S2} on P2 speed 2;
	// join block {S3} on P3 speed 4.
	// rootDone = 2; leafDone = max(2, (2+3)/1, 2+6/2) = 5;
	// latency = 5 + 8/4 = 7.
	fj := workflow.NewForkJoin(2, 8, 3, 6)
	pl := platform.New(1, 2, 4)
	m := ForkJoinMapping{Blocks: []ForkJoinBlock{
		NewForkJoinBlock(true, false, []int{0}, Replicated, 0),
		NewForkJoinBlock(false, false, []int{1}, Replicated, 1),
		NewForkJoinBlock(false, true, nil, Replicated, 2),
	}}
	c := mustEvalForkJoin(t, fj, pl, m)
	if !numeric.Eq(c.Latency, 7) {
		t.Errorf("latency = %v, want 7", c.Latency)
	}
	if !numeric.Eq(c.Period, 5) { // max(5/1, 6/2, 8/4)
		t.Errorf("period = %v, want 5", c.Period)
	}
}

func TestForkJoinJoinWithRootBlock(t *testing.T) {
	// Root and join share a block: {S0,Sjoin} on P1 (speed 2); leaf {S1} on
	// P2 (speed 1). rootDone = 1; leafDone = max(1, 1+4/1) = 5;
	// latency = 5 + 2/2 = 6. Period: block1 = (2+2)/2 = 2, block2 = 4.
	fj := workflow.NewForkJoin(2, 2, 4)
	pl := platform.New(2, 1)
	m := ForkJoinMapping{Blocks: []ForkJoinBlock{
		NewForkJoinBlock(true, true, nil, Replicated, 0),
		NewForkJoinBlock(false, false, []int{0}, Replicated, 1),
	}}
	c := mustEvalForkJoin(t, fj, pl, m)
	if !numeric.Eq(c.Latency, 6) {
		t.Errorf("latency = %v, want 6", c.Latency)
	}
	if !numeric.Eq(c.Period, 4) {
		t.Errorf("period = %v, want 4", c.Period)
	}
}

func TestForkJoinDataParallelJoinAlone(t *testing.T) {
	fj := workflow.NewForkJoin(4, 6, 2)
	pl := platform.New(2, 1, 2)
	m := ForkJoinMapping{Blocks: []ForkJoinBlock{
		NewForkJoinBlock(true, false, []int{0}, Replicated, 0),
		NewForkJoinBlock(false, true, nil, DataParallel, 1, 2),
	}}
	c := mustEvalForkJoin(t, fj, pl, m)
	// leafDone = (4+2)/2 = 3; join delay = 6/(1+2) = 2; latency = 5.
	if !numeric.Eq(c.Latency, 5) {
		t.Errorf("latency = %v, want 5", c.Latency)
	}
	if !numeric.Eq(c.Period, 3) { // max(6/2, 2)
		t.Errorf("period = %v, want 3", c.Period)
	}
}

func TestForkJoinMatchesForkWhenJoinNegligible(t *testing.T) {
	// With a tiny join stage on a very fast dedicated processor, the
	// fork-join latency approaches the fork latency of the same mapping.
	f := workflow.NewFork(2, 3, 6)
	fj := workflow.ForkJoin{Root: 2, Weights: []float64{3, 6}, Join: 1e-9}
	plFork := platform.New(1, 2)
	plFJ := platform.New(1, 2, 1e9)
	mf := ForkMapping{Blocks: []ForkBlock{
		NewForkBlock(true, []int{0}, Replicated, 0),
		NewForkBlock(false, []int{1}, Replicated, 1),
	}}
	mfj := ForkJoinMapping{Blocks: []ForkJoinBlock{
		NewForkJoinBlock(true, false, []int{0}, Replicated, 0),
		NewForkJoinBlock(false, false, []int{1}, Replicated, 1),
		NewForkJoinBlock(false, true, nil, Replicated, 2),
	}}
	// Set Join weight so small the join cost vanishes.
	cf, err := EvalFork(f, plFork, mf)
	if err != nil {
		t.Fatal(err)
	}
	cfj, err := EvalForkJoin(fj, plFJ, mfj)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(cf.Latency, cfj.Latency) {
		t.Fatalf("fork latency %v != fork-join latency %v", cf.Latency, cfj.Latency)
	}
}

func TestValidateForkJoinRejections(t *testing.T) {
	fj := workflow.NewForkJoin(2, 4, 3, 5)
	pl := platform.Homogeneous(3, 1)
	cases := []struct {
		name string
		m    ForkJoinMapping
	}{
		{"no blocks", ForkJoinMapping{}},
		{"no join block", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, false, []int{0, 1}, Replicated, 0),
		}}},
		{"two join blocks", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, true, []int{0, 1}, Replicated, 0),
			NewForkJoinBlock(false, true, nil, Replicated, 1),
		}}},
		{"no root block", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(false, true, []int{0, 1}, Replicated, 0),
		}}},
		{"missing leaf", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, true, []int{0}, Replicated, 0),
		}}},
		{"data-parallel root with join", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, true, nil, DataParallel, 0, 1),
			NewForkJoinBlock(false, false, []int{0, 1}, Replicated, 2),
		}}},
		{"data-parallel join with leaves", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, false, nil, Replicated, 0),
			NewForkJoinBlock(false, true, []int{0, 1}, DataParallel, 1, 2),
		}}},
		{"empty block", ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, true, []int{0, 1}, Replicated, 0),
			NewForkJoinBlock(false, false, nil, Replicated, 1),
		}}},
	}
	for _, c := range cases {
		if err := ValidateForkJoin(fj, pl, c.m); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestForkJoinPeriodNeverExceedsLatency(t *testing.T) {
	f := func(w0, w1, wj, s1, s2 uint8) bool {
		fj := workflow.NewForkJoin(float64(w0%9+1), float64(wj%9+1), float64(w1%9+1))
		pl := platform.New(float64(s1%4+1), float64(s2%4+1))
		m := ForkJoinMapping{Blocks: []ForkJoinBlock{
			NewForkJoinBlock(true, true, nil, Replicated, 0),
			NewForkJoinBlock(false, false, []int{0}, Replicated, 1),
		}}
		c, err := EvalForkJoin(fj, pl, m)
		if err != nil {
			return false
		}
		return numeric.LessEq(c.Period, c.Latency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkJoinMappingString(t *testing.T) {
	m := ForkJoinMapping{Blocks: []ForkJoinBlock{
		NewForkJoinBlock(true, true, []int{0}, Replicated, 0),
	}}
	s := m.String()
	if !strings.Contains(s, "S0") || !strings.Contains(s, "Sjoin") {
		t.Errorf("String missing stages: %s", s)
	}
	if m.UsedProcessors() != 1 {
		t.Errorf("UsedProcessors = %d", m.UsedProcessors())
	}
}
