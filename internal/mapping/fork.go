package mapping

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkBlock maps a set of fork stages onto a processor set. Root indicates
// the block contains S0; Leaves lists the independent stages it contains
// (0-indexed: leaf i is stage S_{i+1} of the paper).
type ForkBlock struct {
	Root   bool
	Leaves []int
	Assignment
}

// ForkMapping partitions the stages of a fork into blocks. The paper calls
// the blocks "intervals" by analogy with the pipeline case, but any subset
// of independent stages is allowed.
type ForkMapping struct {
	Blocks []ForkBlock
}

// NewForkBlock is a convenience constructor.
func NewForkBlock(root bool, leaves []int, mode Mode, procs ...int) ForkBlock {
	return ForkBlock{Root: root, Leaves: leaves, Assignment: Assignment{Procs: procs, Mode: mode}}
}

// weight returns the total computation of the block.
func (b ForkBlock) weight(f workflow.Fork) float64 {
	var w float64
	if b.Root {
		w += f.Root
	}
	for _, l := range b.Leaves {
		w += f.Weights[l]
	}
	return w
}

// ValidateFork checks the structural rules of Section 3.4 for forks:
//   - exactly one block contains S0, every leaf appears in exactly one block;
//   - processor sets are valid and pairwise disjoint;
//   - a data-parallel block may contain any set of independent stages, or S0
//     alone; S0 cannot be data-parallelized together with other stages.
func ValidateFork(f workflow.Fork, pl platform.Platform, m ForkMapping) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if len(m.Blocks) == 0 {
		return errors.New("mapping: fork mapping has no block")
	}
	rootBlocks := 0
	seenLeaf := make([]bool, f.Leaves())
	groups := make([]Assignment, 0, len(m.Blocks))
	for i, b := range m.Blocks {
		if b.Root {
			rootBlocks++
		}
		if !b.Root && len(b.Leaves) == 0 {
			return fmt.Errorf("mapping: block %d contains no stage", i)
		}
		for _, l := range b.Leaves {
			if l < 0 || l >= f.Leaves() {
				return fmt.Errorf("mapping: block %d references leaf %d out of range [0,%d)", i, l, f.Leaves())
			}
			if seenLeaf[l] {
				return fmt.Errorf("mapping: leaf stage S%d assigned to two blocks", l+1)
			}
			seenLeaf[l] = true
		}
		if err := b.Assignment.validate(pl); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		if b.Mode == DataParallel && b.Root && len(b.Leaves) > 0 {
			return fmt.Errorf("mapping: block %d data-parallelizes S0 together with %d other stages (forbidden by Section 3.4)", i, len(b.Leaves))
		}
		groups = append(groups, b.Assignment)
	}
	if rootBlocks != 1 {
		return fmt.Errorf("mapping: %d blocks contain the root stage, want exactly 1", rootBlocks)
	}
	for l, ok := range seenLeaf {
		if !ok {
			return fmt.Errorf("mapping: leaf stage S%d not mapped", l+1)
		}
	}
	return checkDisjoint(groups)
}

// EvalFork validates the mapping and returns its period and latency under
// the flexible model of Section 3.4:
//
//	T_period  = max_r period(r)
//	T_latency = max( tmax(1), w0/s0 + max_{r>=2} tmax(r) )
//
// where block 1 holds S0 and s0 is the speed at which S0 is processed
// (sum of speeds if block 1 is data-parallel, min speed if replicated).
func EvalFork(f workflow.Fork, pl platform.Platform, m ForkMapping) (Cost, error) {
	if err := ValidateFork(f, pl, m); err != nil {
		return Cost{}, err
	}
	var c Cost
	rootDelay, rootSpeed := 0.0, 0.0
	maxOtherDelay := 0.0
	for _, b := range m.Blocks {
		w := b.weight(f)
		if per := b.groupPeriod(w, pl); per > c.Period {
			c.Period = per
		}
		if b.Root {
			rootDelay = b.groupDelay(w, pl)
			if b.Mode == DataParallel {
				rootSpeed = pl.SubsetSpeedSum(b.Procs)
			} else {
				rootSpeed = pl.SubsetMinSpeed(b.Procs)
			}
		} else if d := b.groupDelay(w, pl); d > maxOtherDelay {
			maxOtherDelay = d
		}
	}
	c.Latency = rootDelay
	if t := f.Root/rootSpeed + maxOtherDelay; t > c.Latency {
		c.Latency = t
	}
	return c, nil
}

// ReplicateAllFork maps the whole fork as one block replicated onto every
// processor — the optimal period mapping on homogeneous platforms
// (Theorem 10).
func ReplicateAllFork(f workflow.Fork, pl platform.Platform) ForkMapping {
	procs := make([]int, pl.Processors())
	for i := range procs {
		procs[i] = i
	}
	leaves := make([]int, f.Leaves())
	for i := range leaves {
		leaves[i] = i
	}
	return ForkMapping{Blocks: []ForkBlock{
		{Root: true, Leaves: leaves, Assignment: Assignment{Procs: procs, Mode: Replicated}},
	}}
}

// String renders the mapping in a compact human-readable form.
func (m ForkMapping) String() string {
	parts := make([]string, len(m.Blocks))
	for i, b := range m.Blocks {
		var stages []string
		if b.Root {
			stages = append(stages, "S0")
		}
		sorted := append([]int(nil), b.Leaves...)
		sort.Ints(sorted)
		for _, l := range sorted {
			stages = append(stages, fmt.Sprintf("S%d", l+1))
		}
		parts[i] = fmt.Sprintf("[{%s} %s on %s]", strings.Join(stages, ","), b.Mode, procsLabel(b.Procs))
	}
	return strings.Join(parts, " ")
}

// UsedProcessors returns the number of processors enrolled by the mapping.
func (m ForkMapping) UsedProcessors() int {
	n := 0
	for _, b := range m.Blocks {
		n += len(b.Procs)
	}
	return n
}
