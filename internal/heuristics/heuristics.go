// Package heuristics provides polynomial-time heuristics for the NP-hard
// cells of Table 1 in Benoit & Robert (RR-6308), where no polynomial
// optimal algorithm can exist unless P = NP:
//
//   - heterogeneous pipeline, Heterogeneous platform, period, no
//     data-parallelism (Theorem 9): chains-to-chains partitioning matched
//     to the fastest processors, refined by greedy replication of the
//     bottleneck interval;
//   - pipeline on Heterogeneous platforms with data-parallelism
//     (Theorem 5): proportional processor-group allocation per stage;
//   - heterogeneous fork on Homogeneous platforms, latency (Theorem 12):
//     LPT list scheduling of the leaves;
//   - heterogeneous fork on Heterogeneous platforms, period (Theorem 15):
//     speed-aware greedy list scheduling.
//
// Each heuristic returns a valid mapping; the benchmark harness measures
// its gap against the exact exponential baselines of internal/exhaustive.
package heuristics

import (
	"fmt"
	"sort"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func evalPipe(p workflow.Pipeline, pl platform.Platform, m mapping.PipelineMapping) mapping.Cost {
	c, err := mapping.EvalPipeline(p, pl, m)
	if err != nil {
		panic(fmt.Sprintf("heuristics: constructed invalid pipeline mapping %v: %v", m, err))
	}
	return c
}

func evalFork(f workflow.Fork, pl platform.Platform, m mapping.ForkMapping) mapping.Cost {
	c, err := mapping.EvalFork(f, pl, m)
	if err != nil {
		panic(fmt.Sprintf("heuristics: constructed invalid fork mapping %v: %v", m, err))
	}
	return c
}

// speedsDescending returns processor indices sorted by non-increasing
// speed (ties by index).
func speedsDescending(pl platform.Platform) []int {
	idx := pl.SortedBySpeed()
	out := make([]int, len(idx))
	for i, v := range idx {
		out[len(idx)-1-i] = v
	}
	return out
}

// sortByWeightDesc returns item indices sorted by non-increasing weight.
func sortByWeightDesc(weights []float64) []int {
	idx := make([]int, len(weights))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] > weights[idx[b]] })
	return idx
}
