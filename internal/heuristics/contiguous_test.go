package heuristics

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestContiguousDPFindsSection2HetOptima(t *testing.T) {
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(2, 2, 1, 1)
	_, c, err := HetPipelineContiguousDP(p, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	// The true latency optimum 8.5 lives in the restricted class
	// (S1 data-parallel on the ascending prefix {1,1,2}, rest on the
	// remaining fast processor).
	if !numeric.Eq(c.Latency, 8.5) {
		t.Errorf("contiguous DP latency = %v, want 8.5", c.Latency)
	}
	_, cp, err := HetPipelineContiguousDP(p, pl, true)
	if err != nil {
		t.Fatal(err)
	}
	// The true period optimum 4.5 also lives in the class
	// ([S1,S2] on the two fast, [S3,S4] on the two slow processors).
	if !numeric.Eq(cp.Period, 4.5) {
		t.Errorf("contiguous DP period = %v, want 4.5", cp.Period)
	}
}

func TestContiguousDPSoundAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(5), 12)
		pl := platform.Random(rng, 1+rng.Intn(4), 6)
		for _, minPeriod := range []bool{true, false} {
			m, c, err := HetPipelineContiguousDP(p, pl, minPeriod)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mapping.EvalPipeline(p, pl, m)
			if err != nil {
				t.Fatalf("invalid mapping: %v", err)
			}
			if !numeric.Eq(got.Period, c.Period) || !numeric.Eq(got.Latency, c.Latency) {
				t.Fatalf("reported %v, evaluated %v", c, got)
			}
			if minPeriod {
				opt, _ := exhaustive.PipelinePeriod(p, pl, true)
				if numeric.Less(c.Period, opt.Cost.Period) {
					t.Fatalf("heuristic beats optimum: %v < %v", c.Period, opt.Cost.Period)
				}
			} else {
				opt, _ := exhaustive.PipelineLatency(p, pl, true)
				if numeric.Less(c.Latency, opt.Cost.Latency) {
					t.Fatalf("heuristic beats optimum: %v < %v", c.Latency, opt.Cost.Latency)
				}
			}
		}
	}
}

func TestContiguousDPOftenOptimal(t *testing.T) {
	// On small instances the restricted class usually contains the true
	// optimum; require a healthy hit rate so regressions are caught.
	rng := rand.New(rand.NewSource(2))
	hits, trials := 0, 0
	for trial := 0; trial < 40; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		_, c, err := HetPipelineContiguousDP(p, pl, false)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelineLatency(p, pl, true)
		if !ok {
			continue
		}
		trials++
		if numeric.Eq(c.Latency, opt.Cost.Latency) {
			hits++
		}
	}
	if hits*10 < trials*8 { // at least 80%
		t.Errorf("contiguous DP optimal on only %d/%d instances", hits, trials)
	}
}

func TestContiguousDPRejectsInvalid(t *testing.T) {
	if _, _, err := HetPipelineContiguousDP(workflow.NewPipeline(), platform.Homogeneous(1, 1), true); err == nil {
		t.Error("empty pipeline accepted")
	}
}
