package heuristics

import (
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkObjective selects what LocalSearchFork minimizes.
type ForkObjective int

const (
	// ForkMinPeriod minimizes the period.
	ForkMinPeriod ForkObjective = iota
	// ForkMinLatency minimizes the latency.
	ForkMinLatency
)

func forkObjectiveValue(c mapping.Cost, o ForkObjective) float64 {
	if o == ForkMinPeriod {
		return c.Period
	}
	return c.Latency
}

// LocalSearchFork improves a valid fork mapping by hill climbing on the
// selected objective with four move kinds: moving a leaf between blocks,
// moving a processor between blocks, splitting a leaf out onto an idle
// processor, and merging two blocks. The returned mapping is always valid
// and never worse than the input.
func LocalSearchFork(f workflow.Fork, pl platform.Platform, m mapping.ForkMapping, obj ForkObjective) (mapping.ForkMapping, mapping.Cost, error) {
	cur, err := mapping.EvalFork(f, pl, m)
	if err != nil {
		return mapping.ForkMapping{}, mapping.Cost{}, err
	}
	best := cloneForkMapping(m)
	const maxRounds = 200
	for round := 0; round < maxRounds; round++ {
		improved := false
		for _, cand := range forkNeighbours(best, pl) {
			c, err := mapping.EvalFork(f, pl, cand)
			if err != nil {
				continue
			}
			if numeric.Less(forkObjectiveValue(c, obj), forkObjectiveValue(cur, obj)) {
				best, cur = cand, c
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return best, cur, nil
}

func cloneForkMapping(m mapping.ForkMapping) mapping.ForkMapping {
	out := mapping.ForkMapping{Blocks: make([]mapping.ForkBlock, len(m.Blocks))}
	for i, b := range m.Blocks {
		out.Blocks[i] = b
		out.Blocks[i].Leaves = append([]int(nil), b.Leaves...)
		out.Blocks[i].Procs = append([]int(nil), b.Procs...)
	}
	return out
}

// dropEmptyBlocks removes non-root blocks left without stages.
func dropEmptyBlocks(m mapping.ForkMapping) mapping.ForkMapping {
	out := mapping.ForkMapping{}
	for _, b := range m.Blocks {
		if !b.Root && len(b.Leaves) == 0 {
			continue
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}

// forkNeighbours generates candidate moves; structurally invalid ones are
// filtered by the caller through EvalFork's validation.
func forkNeighbours(m mapping.ForkMapping, pl platform.Platform) []mapping.ForkMapping {
	var out []mapping.ForkMapping
	k := len(m.Blocks)

	// Move 1: move one leaf from block i to block j.
	for i := 0; i < k; i++ {
		for li := range m.Blocks[i].Leaves {
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				c := cloneForkMapping(m)
				leaf := c.Blocks[i].Leaves[li]
				c.Blocks[i].Leaves = append(c.Blocks[i].Leaves[:li], c.Blocks[i].Leaves[li+1:]...)
				c.Blocks[j].Leaves = append(c.Blocks[j].Leaves, leaf)
				out = append(out, dropEmptyBlocks(c))
			}
		}
	}

	// Move 2: move one processor from a multi-processor block to another.
	for i := 0; i < k; i++ {
		if len(m.Blocks[i].Procs) < 2 {
			continue
		}
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			c := cloneForkMapping(m)
			moved := c.Blocks[i].Procs[len(c.Blocks[i].Procs)-1]
			c.Blocks[i].Procs = c.Blocks[i].Procs[:len(c.Blocks[i].Procs)-1]
			c.Blocks[j].Procs = append(c.Blocks[j].Procs, moved)
			out = append(out, c)
		}
	}

	// Move 3: split one leaf out onto the fastest idle processor.
	used := make(map[int]bool)
	for _, b := range m.Blocks {
		for _, q := range b.Procs {
			used[q] = true
		}
	}
	idle := -1
	for _, q := range speedsDescending(pl) {
		if !used[q] {
			idle = q
			break
		}
	}
	if idle >= 0 {
		for i := 0; i < k; i++ {
			for li := range m.Blocks[i].Leaves {
				c := cloneForkMapping(m)
				leaf := c.Blocks[i].Leaves[li]
				c.Blocks[i].Leaves = append(c.Blocks[i].Leaves[:li], c.Blocks[i].Leaves[li+1:]...)
				c.Blocks = append(c.Blocks, mapping.NewForkBlock(false, []int{leaf}, mapping.Replicated, idle))
				out = append(out, dropEmptyBlocks(c))
			}
		}
	}

	// Move 4: merge block j into block i, pooling processors.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j || m.Blocks[j].Root {
				continue
			}
			c := cloneForkMapping(m)
			c.Blocks[i].Leaves = append(c.Blocks[i].Leaves, c.Blocks[j].Leaves...)
			c.Blocks[i].Procs = append(c.Blocks[i].Procs, c.Blocks[j].Procs...)
			c.Blocks[i].Mode = mapping.Replicated
			c.Blocks = append(c.Blocks[:j], c.Blocks[j+1:]...)
			out = append(out, c)
		}
	}
	return out
}
