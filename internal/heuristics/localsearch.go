package heuristics

import (
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// LocalSearchPipelinePeriod improves a valid pipeline mapping by hill
// climbing on the period with three move kinds, until a local optimum (or
// the iteration budget) is reached:
//
//  1. shift a boundary stage between adjacent intervals,
//  2. swap the processor sets of two intervals,
//  3. move a processor from a multi-processor interval to another interval,
//  4. split an interval, giving the new half an idle processor,
//  5. merge two adjacent intervals (pooling their processors).
//
// Ties are broken towards lower latency. The returned mapping is always
// valid and never worse than the input.
func LocalSearchPipelinePeriod(p workflow.Pipeline, pl platform.Platform, m mapping.PipelineMapping) (mapping.PipelineMapping, mapping.Cost, error) {
	cur, err := mapping.EvalPipeline(p, pl, m)
	if err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	best := clonePipelineMapping(m)
	const maxRounds = 200
	for round := 0; round < maxRounds; round++ {
		improved := false
		for _, cand := range pipelineNeighbours(best, pl) {
			c, err := mapping.EvalPipeline(p, pl, cand)
			if err != nil {
				continue // neighbour construction made an invalid move; skip
			}
			if numeric.Less(c.Period, cur.Period) ||
				(numeric.Eq(c.Period, cur.Period) && numeric.Less(c.Latency, cur.Latency)) {
				best, cur = cand, c
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return best, cur, nil
}

func clonePipelineMapping(m mapping.PipelineMapping) mapping.PipelineMapping {
	out := mapping.PipelineMapping{Intervals: make([]mapping.PipelineInterval, len(m.Intervals))}
	for i, iv := range m.Intervals {
		out.Intervals[i] = iv
		out.Intervals[i].Procs = append([]int(nil), iv.Procs...)
	}
	return out
}

// pipelineNeighbours generates candidate moves from m. Invalid candidates
// (for example a shift that would empty an interval) are filtered by the
// caller through EvalPipeline's validation.
func pipelineNeighbours(m mapping.PipelineMapping, pl platform.Platform) []mapping.PipelineMapping {
	var out []mapping.PipelineMapping
	k := len(m.Intervals)

	// Move 1: boundary shifts between adjacent intervals.
	for i := 0; i+1 < k; i++ {
		if m.Intervals[i].Last > m.Intervals[i].First {
			// Give the last stage of interval i to interval i+1.
			c := clonePipelineMapping(m)
			c.Intervals[i].Last--
			c.Intervals[i+1].First--
			if legalModes(c.Intervals[i]) && legalModes(c.Intervals[i+1]) {
				out = append(out, c)
			}
		}
		if m.Intervals[i+1].Last > m.Intervals[i+1].First {
			// Take the first stage of interval i+1 into interval i.
			c := clonePipelineMapping(m)
			c.Intervals[i].Last++
			c.Intervals[i+1].First++
			if legalModes(c.Intervals[i]) && legalModes(c.Intervals[i+1]) {
				out = append(out, c)
			}
		}
	}

	// Move 2: swap processor sets of two intervals.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			c := clonePipelineMapping(m)
			c.Intervals[i].Procs, c.Intervals[j].Procs = c.Intervals[j].Procs, c.Intervals[i].Procs
			out = append(out, c)
		}
	}

	// Move 3: move one processor from a multi-processor interval to
	// another interval.
	for i := 0; i < k; i++ {
		if len(m.Intervals[i].Procs) < 2 {
			continue
		}
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			c := clonePipelineMapping(m)
			moved := c.Intervals[i].Procs[len(c.Intervals[i].Procs)-1]
			c.Intervals[i].Procs = c.Intervals[i].Procs[:len(c.Intervals[i].Procs)-1]
			c.Intervals[j].Procs = append(c.Intervals[j].Procs, moved)
			if legalModes(c.Intervals[j]) {
				out = append(out, c)
			}
		}
	}

	// Move 4: split an interval at each possible boundary, staffing the
	// right half with the fastest idle processor.
	used := make(map[int]bool)
	for _, iv := range m.Intervals {
		for _, q := range iv.Procs {
			used[q] = true
		}
	}
	idle := -1
	for _, q := range speedsDescending(pl) {
		if !used[q] {
			idle = q
			break
		}
	}
	if idle >= 0 {
		for i := 0; i < k; i++ {
			for cut := m.Intervals[i].First; cut < m.Intervals[i].Last; cut++ {
				c := clonePipelineMapping(m)
				right := c.Intervals[i]
				right.First = cut + 1
				right.Procs = []int{idle}
				right.Mode = mapping.Replicated
				c.Intervals[i].Last = cut
				if !legalModes(c.Intervals[i]) {
					continue
				}
				c.Intervals = append(c.Intervals[:i+1], append([]mapping.PipelineInterval{right}, c.Intervals[i+1:]...)...)
				out = append(out, c)
			}
		}
	}

	// Move 5: merge adjacent intervals, pooling their processors.
	for i := 0; i+1 < k; i++ {
		c := clonePipelineMapping(m)
		merged := c.Intervals[i]
		merged.Last = c.Intervals[i+1].Last
		merged.Procs = append(merged.Procs, c.Intervals[i+1].Procs...)
		merged.Mode = mapping.Replicated
		c.Intervals = append(c.Intervals[:i], append([]mapping.PipelineInterval{merged}, c.Intervals[i+2:]...)...)
		out = append(out, c)
	}
	return out
}

// legalModes reports whether the interval's mode is still structurally
// legal after a move (a data-parallel interval must stay single-stage).
func legalModes(iv mapping.PipelineInterval) bool {
	return iv.Mode != mapping.DataParallel || iv.First == iv.Last
}
