package heuristics

import (
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HetForkJoinGreedy is a polynomial heuristic for the NP-hard fork-join
// cells: it list-schedules the stages onto one block per processor with
// speed-aware load balancing — the root on the processor minimizing its
// completion, each leaf (heaviest first) likewise, and the join stage
// co-located with either the root's or the most-loaded block, whichever
// evaluates better. Full replication is also tried; the best mapping by
// the selected objective is returned.
func HetForkJoinGreedy(fj workflow.ForkJoin, pl platform.Platform, minimizePeriod bool) (mapping.ForkJoinMapping, mapping.Cost, error) {
	if err := fj.Validate(); err != nil {
		return mapping.ForkJoinMapping{}, mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.ForkJoinMapping{}, mapping.Cost{}, err
	}
	p := pl.Processors()
	obj := func(c mapping.Cost) float64 {
		if minimizePeriod {
			return c.Period
		}
		return c.Latency
	}

	loads := make([]float64, p)
	members := make([][]int, p)
	place := func(weight float64) int {
		best := -1
		var bestRatio float64
		for u := 0; u < p; u++ {
			ratio := (loads[u] + weight) / pl.Speeds[u]
			if best < 0 || ratio < bestRatio {
				best, bestRatio = u, ratio
			}
		}
		loads[best] += weight
		return best
	}
	rootProc := place(fj.Root)
	for _, leaf := range sortByWeightDesc(fj.Weights) {
		u := place(fj.Weights[leaf])
		members[u] = append(members[u], leaf)
	}

	// Candidate join placements: with the root, or on the processor whose
	// join-inclusive load/speed ratio is smallest. Kept as an ordered
	// slice: tie-valued candidates must be tried in a deterministic order
	// or the returned mapping varies from run to run.
	joinCandidates := []int{rootProc}
	bestU, bestRatio := -1, 0.0
	for u := 0; u < p; u++ {
		ratio := (loads[u] + fj.Join) / pl.Speeds[u]
		if bestU < 0 || ratio < bestRatio {
			bestU, bestRatio = u, ratio
		}
	}
	if bestU != rootProc {
		joinCandidates = append(joinCandidates, bestU)
	}

	build := func(joinProc int) mapping.ForkJoinMapping {
		var m mapping.ForkJoinMapping
		for u := 0; u < p; u++ {
			isRoot := u == rootProc
			isJoin := u == joinProc
			if !isRoot && !isJoin && len(members[u]) == 0 {
				continue
			}
			m.Blocks = append(m.Blocks,
				mapping.NewForkJoinBlock(isRoot, isJoin, members[u], mapping.Replicated, u))
		}
		return m
	}

	var best mapping.ForkJoinMapping
	bestVal := numeric.Inf
	consider := func(m mapping.ForkJoinMapping) {
		c, err := mapping.EvalForkJoin(fj, pl, m)
		if err != nil {
			return
		}
		if numeric.Less(obj(c), bestVal) {
			best, bestVal = m, obj(c)
		}
	}
	for _, jp := range joinCandidates {
		consider(build(jp))
	}
	consider(mapping.ReplicateAllForkJoin(fj, pl))

	c, err := mapping.EvalForkJoin(fj, pl, best)
	if err != nil {
		panic("heuristics: fork-join greedy produced invalid mapping: " + err.Error())
	}
	return best, c, nil
}
