package heuristics

import (
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HetForkLatencyLPT is a polynomial heuristic for the NP-hard problem of
// Theorem 12: minimize the latency of a heterogeneous fork on a
// Homogeneous platform.
//
// On p identical processors the latency of a no-data-parallelism mapping is
// w0/s + max(W_root, max_r W_r)/s (up to the root block's own offset), so
// minimizing it is the classic makespan problem over the leaf weights. The
// heuristic runs Longest-Processing-Time list scheduling of the leaves over
// the p processors, with the root joining the least-loaded block.
func HetForkLatencyLPT(f workflow.Fork, pl platform.Platform) (mapping.ForkMapping, mapping.Cost, error) {
	if err := f.Validate(); err != nil {
		return mapping.ForkMapping{}, mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.ForkMapping{}, mapping.Cost{}, err
	}
	p := pl.Processors()
	loads := make([]float64, p)
	members := make([][]int, p)
	for _, leaf := range sortByWeightDesc(f.Weights) {
		best := 0
		for u := 1; u < p; u++ {
			if loads[u] < loads[best] {
				best = u
			}
		}
		loads[best] += f.Weights[leaf]
		members[best] = append(members[best], leaf)
	}
	// The root goes to the least-loaded block: its leaves start at w0/s
	// like everyone else's, so any block works; the least-loaded one
	// balances (w0 + W_root) against the others.
	rootBlock := 0
	for u := 1; u < p; u++ {
		if loads[u] < loads[rootBlock] {
			rootBlock = u
		}
	}
	var m mapping.ForkMapping
	for u := 0; u < p; u++ {
		if u != rootBlock && len(members[u]) == 0 {
			continue
		}
		m.Blocks = append(m.Blocks,
			mapping.NewForkBlock(u == rootBlock, members[u], mapping.Replicated, u))
	}
	c := evalFork(f, pl, m)
	return m, c, nil
}

// HetForkPeriodGreedy is a polynomial heuristic for the NP-hard problem of
// Theorem 15: minimize the period of a heterogeneous fork on a
// Heterogeneous platform without data-parallelism.
//
// It list-schedules the stages (root first, then leaves heaviest-first)
// onto one block per processor, always choosing the processor whose
// resulting load/speed ratio stays smallest, then compares the result with
// full replication of the whole fork and returns the better mapping.
func HetForkPeriodGreedy(f workflow.Fork, pl platform.Platform) (mapping.ForkMapping, mapping.Cost, error) {
	if err := f.Validate(); err != nil {
		return mapping.ForkMapping{}, mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.ForkMapping{}, mapping.Cost{}, err
	}
	p := pl.Processors()
	loads := make([]float64, p)
	members := make([][]int, p)

	place := func(weight float64) int {
		best := -1
		var bestRatio float64
		for u := 0; u < p; u++ {
			ratio := (loads[u] + weight) / pl.Speeds[u]
			if best < 0 || ratio < bestRatio {
				best, bestRatio = u, ratio
			}
		}
		loads[best] += weight
		return best
	}

	rootProc := place(f.Root)
	for _, leaf := range sortByWeightDesc(f.Weights) {
		u := place(f.Weights[leaf])
		members[u] = append(members[u], leaf)
	}
	var greedy mapping.ForkMapping
	for u := 0; u < p; u++ {
		if u != rootProc && len(members[u]) == 0 {
			continue
		}
		greedy.Blocks = append(greedy.Blocks,
			mapping.NewForkBlock(u == rootProc, members[u], mapping.Replicated, u))
	}
	gc := evalFork(f, pl, greedy)

	replAll := mapping.ReplicateAllFork(f, pl)
	rc := evalFork(f, pl, replAll)
	if numeric.Less(rc.Period, gc.Period) {
		return replAll, rc, nil
	}
	return greedy, gc, nil
}
