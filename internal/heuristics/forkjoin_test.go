package heuristics

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestHetForkJoinGreedyValidAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		fj := workflow.RandomForkJoin(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 2+rng.Intn(2), 5)
		for _, minPeriod := range []bool{true, false} {
			m, c, err := HetForkJoinGreedy(fj, pl, minPeriod)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mapping.EvalForkJoin(fj, pl, m)
			if err != nil {
				t.Fatalf("greedy mapping invalid: %v", err)
			}
			if !numeric.Eq(got.Period, c.Period) || !numeric.Eq(got.Latency, c.Latency) {
				t.Fatalf("reported %v, evaluated %v", c, got)
			}
			if minPeriod {
				opt, ok := exhaustive.ForkJoinPeriod(fj, pl, false)
				if ok && numeric.Less(c.Period, opt.Cost.Period) {
					t.Fatalf("greedy beats optimum: %v < %v", c.Period, opt.Cost.Period)
				}
			} else {
				opt, ok := exhaustive.ForkJoinLatency(fj, pl, false)
				if ok && numeric.Less(c.Latency, opt.Cost.Latency) {
					t.Fatalf("greedy beats optimum: %v < %v", c.Latency, opt.Cost.Latency)
				}
			}
		}
	}
}

func TestHetForkJoinGreedyBeatsSingleProcessorWhenSpread(t *testing.T) {
	// Two heavy independent leaves and a second processor: the greedy must
	// spread them rather than serialize everything.
	fj := workflow.NewForkJoin(1, 1, 8, 8)
	pl := platform.Homogeneous(2, 1)
	_, c, err := HetForkJoinGreedy(fj, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	serialLatency := fj.TotalWork() / 1 // 18 on one processor
	if !numeric.Less(c.Latency, serialLatency) {
		t.Fatalf("greedy latency %v does not beat the serial %v", c.Latency, serialLatency)
	}
}

func TestHetForkJoinGreedyRejectsInvalid(t *testing.T) {
	if _, _, err := HetForkJoinGreedy(workflow.NewForkJoin(0, 1, 1), platform.New(1), true); err == nil {
		t.Error("invalid fork-join accepted")
	}
	if _, _, err := HetForkJoinGreedy(workflow.NewForkJoin(1, 1, 1), platform.New(), true); err == nil {
		t.Error("empty platform accepted")
	}
}
