package heuristics

import (
	"repliflow/internal/chains"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HetPipelinePeriodNoDP is a polynomial heuristic for the NP-hard problem
// of Theorem 9: minimize the period of a heterogeneous pipeline on a
// Heterogeneous platform without data-parallelism. It runs the
// constructive phase (HetPipelinePeriodNoDPConstructive) and polishes the
// result with LocalSearchPipelinePeriod.
func HetPipelinePeriodNoDP(p workflow.Pipeline, pl platform.Platform) (mapping.PipelineMapping, mapping.Cost, error) {
	best, bestCost, err := HetPipelinePeriodNoDPConstructive(p, pl)
	if err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	improved, improvedCost, err := LocalSearchPipelinePeriod(p, pl, best)
	if err == nil && numeric.Less(improvedCost.Period, bestCost.Period) {
		best, bestCost = improved, improvedCost
	}
	return best, bestCost, nil
}

// HetPipelinePeriodNoDPConstructive is the constructive phase of the
// Theorem 9 heuristic: for every interval count q, split the stages with
// the exact chains-to-chains solver, assign heavier intervals to faster
// processors, then greedily replicate the current bottleneck interval with
// the unused processors. The best mapping over all q is returned.
func HetPipelinePeriodNoDPConstructive(p workflow.Pipeline, pl platform.Platform) (mapping.PipelineMapping, mapping.Cost, error) {
	if err := p.Validate(); err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	desc := speedsDescending(pl)
	var best mapping.PipelineMapping
	bestCost := mapping.Cost{Period: numeric.Inf, Latency: numeric.Inf}

	maxQ := pl.Processors()
	if p.Stages() < maxQ {
		maxQ = p.Stages()
	}
	for q := 1; q <= maxQ; q++ {
		part, _, err := chains.DP(p.Weights, q)
		if err != nil {
			return mapping.PipelineMapping{}, mapping.Cost{}, err
		}
		m := assignIntervalsToFastest(p, pl, part, desc)
		m = replicateBottleneck(p, pl, m, desc)
		if c := evalPipe(p, pl, m); numeric.Less(c.Period, bestCost.Period) {
			best, bestCost = m, c
		}
	}
	return best, bestCost, nil
}

// assignIntervalsToFastest maps the partition's intervals onto single
// processors: the interval with the largest weight gets the fastest
// processor, and so on.
func assignIntervalsToFastest(p workflow.Pipeline, pl platform.Platform, part chains.Partition, desc []int) mapping.PipelineMapping {
	q := part.Intervals()
	weights := make([]float64, q)
	firsts := make([]int, q)
	lasts := make([]int, q)
	start := 0
	for k, end := range part.Bounds {
		firsts[k], lasts[k] = start, end-1
		weights[k] = p.IntervalWork(start, end-1)
		start = end
	}
	order := sortByWeightDesc(weights)
	procOf := make([]int, q)
	for rank, k := range order {
		procOf[k] = desc[rank]
	}
	m := mapping.PipelineMapping{Intervals: make([]mapping.PipelineInterval, q)}
	for k := 0; k < q; k++ {
		m.Intervals[k] = mapping.NewPipelineInterval(firsts[k], lasts[k], mapping.Replicated, procOf[k])
	}
	return m
}

// replicateBottleneck repeatedly adds an unused processor to the interval
// with the largest period, as long as that strictly decreases its period.
// Unused processors are considered fastest-first; a processor slower than
// the interval's current minimum would not reduce the period when the
// divisor k grows less than the min speed shrinks, which the recomputation
// accounts for.
func replicateBottleneck(p workflow.Pipeline, pl platform.Platform, m mapping.PipelineMapping, desc []int) mapping.PipelineMapping {
	used := make(map[int]bool)
	for _, iv := range m.Intervals {
		for _, q := range iv.Procs {
			used[q] = true
		}
	}
	var free []int
	for _, q := range desc {
		if !used[q] {
			free = append(free, q)
		}
	}
	period := func(iv mapping.PipelineInterval) float64 {
		w := p.IntervalWork(iv.First, iv.Last)
		return w / (float64(len(iv.Procs)) * pl.SubsetMinSpeed(iv.Procs))
	}
	for len(free) > 0 {
		// Locate the bottleneck interval.
		worst, worstPer := -1, 0.0
		for i, iv := range m.Intervals {
			if per := period(iv); per > worstPer {
				worst, worstPer = i, per
			}
		}
		if worst < 0 {
			break
		}
		// Try to improve it with the fastest free processor.
		iv := m.Intervals[worst]
		cand := append(append([]int(nil), iv.Procs...), free[0])
		w := p.IntervalWork(iv.First, iv.Last)
		newPer := w / (float64(len(cand)) * pl.SubsetMinSpeed(cand))
		if !numeric.Less(newPer, worstPer) {
			break
		}
		m.Intervals[worst].Procs = cand
		free = free[1:]
	}
	return m
}

// HetPipelineWithDP is a polynomial heuristic for the NP-hard problems of
// Theorem 5: optimize a pipeline on a Heterogeneous platform when stages
// may be data-parallelized. It builds three candidate mappings — whole
// pipeline on the fastest processor, whole pipeline replicated everywhere,
// and every stage data-parallelized on a processor group allocated greedily
// in proportion to the remaining stage weights — and returns the best by
// the given objective (true = minimize period, false = minimize latency).
func HetPipelineWithDP(p workflow.Pipeline, pl platform.Platform, minimizePeriod bool) (mapping.PipelineMapping, mapping.Cost, error) {
	if err := p.Validate(); err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	objective := func(c mapping.Cost) float64 {
		if minimizePeriod {
			return c.Period
		}
		return c.Latency
	}
	var best mapping.PipelineMapping
	bestVal := numeric.Inf
	consider := func(m mapping.PipelineMapping) {
		if c := evalPipe(p, pl, m); numeric.Less(objective(c), bestVal) {
			best, bestVal = m, objective(c)
		}
	}

	consider(mapping.WholeOnProcessor(p, pl.Fastest()))
	consider(mapping.ReplicateAllPipeline(p, pl))
	if m, ok := proportionalDataParallel(p, pl); ok {
		consider(m)
	}
	if m, _, err := HetPipelineContiguousDP(p, pl, minimizePeriod); err == nil {
		consider(m)
	}

	c := evalPipe(p, pl, best)
	return best, c, nil
}

// proportionalDataParallel data-parallelizes every stage on its own group
// of processors, assigning processors (fastest first) greedily to the stage
// whose delay w_i / (assigned speed sum) is currently the largest. Requires
// p >= n; returns false otherwise.
func proportionalDataParallel(p workflow.Pipeline, pl platform.Platform) (mapping.PipelineMapping, bool) {
	n := p.Stages()
	if pl.Processors() < n {
		return mapping.PipelineMapping{}, false
	}
	groups := make([][]int, n)
	sums := make([]float64, n)
	// Seed every stage with one processor (heaviest stage gets fastest).
	desc := speedsDescending(pl)
	order := sortByWeightDesc(p.Weights)
	for rank, stage := range order {
		q := desc[rank]
		groups[stage] = []int{q}
		sums[stage] = pl.Speeds[q]
	}
	// Hand out the remaining processors to the current worst stage.
	for _, q := range desc[n:] {
		worst, worstDelay := 0, 0.0
		for i := range groups {
			if d := p.Weights[i] / sums[i]; d > worstDelay {
				worst, worstDelay = i, d
			}
		}
		groups[worst] = append(groups[worst], q)
		sums[worst] += pl.Speeds[q]
	}
	m := mapping.PipelineMapping{Intervals: make([]mapping.PipelineInterval, n)}
	for i := 0; i < n; i++ {
		mode := mapping.DataParallel
		if len(groups[i]) == 1 {
			mode = mapping.Replicated
		}
		m.Intervals[i] = mapping.PipelineInterval{
			First: i, Last: i,
			Assignment: mapping.Assignment{Procs: groups[i], Mode: mode},
		}
	}
	return m, true
}
