package heuristics

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestLocalSearchForkNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(4), 12)
		pl := platform.Random(rng, 2+rng.Intn(3), 6)
		start, c0, err := HetForkPeriodGreedy(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range []ForkObjective{ForkMinPeriod, ForkMinLatency} {
			improved, c1, err := LocalSearchFork(f, pl, start, obj)
			if err != nil {
				t.Fatal(err)
			}
			if numeric.Greater(forkObjectiveValue(c1, obj), forkObjectiveValue(c0, obj)) {
				t.Fatalf("fork local search worsened objective %v: %v -> %v", obj, c0, c1)
			}
			if _, err := mapping.EvalFork(f, pl, improved); err != nil {
				t.Fatalf("fork local search produced invalid mapping: %v", err)
			}
		}
	}
}

func TestLocalSearchForkImprovesBadStart(t *testing.T) {
	// Everything on the slowest processor while two fast ones idle.
	f := workflow.NewFork(2, 9, 9, 1)
	pl := platform.New(1, 4, 4)
	start := mapping.ForkMapping{Blocks: []mapping.ForkBlock{
		mapping.NewForkBlock(true, []int{0, 1, 2}, mapping.Replicated, 0),
	}}
	before, err := mapping.EvalFork(f, pl, start)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := LocalSearchFork(f, pl, start, ForkMinLatency)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Less(after.Latency, before.Latency) {
		t.Fatalf("fork local search failed to improve latency %v (stayed %v)", before.Latency, after.Latency)
	}
}

func TestLocalSearchForkSoundAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 2+rng.Intn(2), 4)
		start, _, err := HetForkPeriodGreedy(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		_, after, err := LocalSearchFork(f, pl, start, ForkMinPeriod)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.ForkPeriod(f, pl, false)
		if !ok {
			t.Fatal("no optimum")
		}
		if numeric.Less(after.Period, opt.Cost.Period) {
			t.Fatalf("fork local search beats the optimum: %v < %v", after.Period, opt.Cost.Period)
		}
	}
}

func TestLocalSearchForkRejectsInvalidStart(t *testing.T) {
	f := workflow.NewFork(1, 2)
	pl := platform.Homogeneous(2, 1)
	if _, _, err := LocalSearchFork(f, pl, mapping.ForkMapping{}, ForkMinPeriod); err == nil {
		t.Error("invalid start accepted")
	}
}
