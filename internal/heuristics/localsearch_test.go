package heuristics

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestLocalSearchNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		p := workflow.RandomPipeline(rng, 2+rng.Intn(4), 12)
		pl := platform.Random(rng, 2+rng.Intn(3), 6)
		start, _, err := HetPipelinePeriodNoDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		before, err := mapping.EvalPipeline(p, pl, start)
		if err != nil {
			t.Fatal(err)
		}
		improved, after, err := LocalSearchPipelinePeriod(p, pl, start)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Greater(after.Period, before.Period) {
			t.Fatalf("local search worsened the period: %v -> %v", before.Period, after.Period)
		}
		check, err := mapping.EvalPipeline(p, pl, improved)
		if err != nil {
			t.Fatalf("local search produced an invalid mapping: %v", err)
		}
		if !numeric.Eq(check.Period, after.Period) {
			t.Fatalf("reported %v, evaluated %v", after, check)
		}
	}
}

func TestLocalSearchImprovesBadStart(t *testing.T) {
	// Deliberately terrible start: the whole pipeline on the slowest
	// processor, everything else idle. Local search must move work around.
	p := workflow.NewPipeline(9, 9, 1, 1)
	pl := platform.New(1, 4, 4)
	start := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 3, mapping.Replicated, 0),
	}}
	before, err := mapping.EvalPipeline(p, pl, start)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := LocalSearchPipelinePeriod(p, pl, start)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Less(after.Period, before.Period) {
		t.Fatalf("local search failed to improve %v (stayed %v)", before.Period, after.Period)
	}
}

func TestLocalSearchSoundAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		p := workflow.RandomPipeline(rng, 2+rng.Intn(3), 12)
		pl := platform.Random(rng, 2+rng.Intn(3), 6)
		start, _, err := HetPipelinePeriodNoDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		_, after, err := LocalSearchPipelinePeriod(p, pl, start)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok {
			t.Fatal("no optimum")
		}
		if numeric.Less(after.Period, opt.Cost.Period) {
			t.Fatalf("local search beats the exhaustive optimum: %v < %v", after.Period, opt.Cost.Period)
		}
	}
}

func TestLocalSearchRejectsInvalidStart(t *testing.T) {
	p := workflow.NewPipeline(1, 2)
	pl := platform.Homogeneous(2, 1)
	bad := mapping.PipelineMapping{} // no intervals
	if _, _, err := LocalSearchPipelinePeriod(p, pl, bad); err == nil {
		t.Error("invalid start mapping accepted")
	}
}

func TestLocalSearchPreservesDataParallelLegality(t *testing.T) {
	// A data-parallel singleton interval must never absorb a second stage.
	p := workflow.NewPipeline(10, 2, 2)
	pl := platform.New(3, 3, 1)
	start := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
		mapping.NewPipelineInterval(1, 2, mapping.Replicated, 2),
	}}
	improved, _, err := LocalSearchPipelinePeriod(p, pl, start)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mapping.EvalPipeline(p, pl, improved); err != nil {
		t.Fatalf("local search produced illegal mapping: %v", err)
	}
}
