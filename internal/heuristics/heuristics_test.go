package heuristics

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestHetPipelinePeriodNoDPValidAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(5), 12)
		pl := platform.Random(rng, 1+rng.Intn(4), 6)
		m, c, err := HetPipelinePeriodNoDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mapping.EvalPipeline(p, pl, m)
		if err != nil {
			t.Fatalf("heuristic mapping invalid: %v", err)
		}
		if !numeric.Eq(got.Period, c.Period) {
			t.Fatalf("reported %v, evaluated %v", c, got)
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok {
			t.Fatal("no optimum")
		}
		if numeric.Less(c.Period, opt.Cost.Period) {
			t.Fatalf("heuristic %v beats the exhaustive optimum %v — exhaustive bug?",
				c.Period, opt.Cost.Period)
		}
		// On these instance sizes the combined heuristic stays within 2x.
		if c.Period > 2*opt.Cost.Period+1e-9 {
			t.Errorf("trial %d: heuristic gap too large: %v vs optimal %v (pipe=%v speeds=%v)",
				trial, c.Period, opt.Cost.Period, p.Weights, pl.Speeds)
		}
	}
}

func TestHetPipelinePeriodNoDPOptimalOnSingleProcessor(t *testing.T) {
	p := workflow.NewPipeline(3, 5, 2)
	pl := platform.New(2)
	_, c, err := HetPipelinePeriodNoDP(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(c.Period, 5) { // 10/2
		t.Errorf("period = %v, want 5", c.Period)
	}
}

func TestHetPipelineWithDPValidAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 12)
		pl := platform.Random(rng, 1+rng.Intn(4), 6)
		for _, minPeriod := range []bool{true, false} {
			m, c, err := HetPipelineWithDP(p, pl, minPeriod)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mapping.EvalPipeline(p, pl, m); err != nil {
				t.Fatalf("heuristic mapping invalid: %v", err)
			}
			if minPeriod {
				opt, _ := exhaustive.PipelinePeriod(p, pl, true)
				if numeric.Less(c.Period, opt.Cost.Period) {
					t.Fatalf("heuristic period %v beats optimum %v", c.Period, opt.Cost.Period)
				}
			} else {
				opt, _ := exhaustive.PipelineLatency(p, pl, true)
				if numeric.Less(c.Latency, opt.Cost.Latency) {
					t.Fatalf("heuristic latency %v beats optimum %v", c.Latency, opt.Cost.Latency)
				}
				// Latency never exceeds the trivial fastest-processor bound.
				if numeric.Greater(c.Latency, p.TotalWork()/pl.MaxSpeed()) {
					t.Fatalf("heuristic latency %v worse than whole-on-fastest %v",
						c.Latency, p.TotalWork()/pl.MaxSpeed())
				}
			}
		}
	}
}

func TestHetPipelineWithDPSection2(t *testing.T) {
	// On the Section 2 heterogeneous example the heuristic should pick a
	// data-parallel split no worse than the paper's hand mapping (13.5).
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(2, 2, 1, 1)
	_, c, err := HetPipelineWithDP(p, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.Greater(c.Latency, 13.5) {
		t.Errorf("heuristic latency %v worse than the paper's hand mapping 13.5", c.Latency)
	}
}

func TestHetForkLatencyLPTValidAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(4), 12)
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(3)))
		m, c, err := HetForkLatencyLPT(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mapping.EvalFork(f, pl, m); err != nil {
			t.Fatalf("heuristic mapping invalid: %v", err)
		}
		opt, ok := exhaustive.ForkLatency(f, pl, false)
		if !ok {
			t.Fatal("no optimum")
		}
		if numeric.Less(c.Latency, opt.Cost.Latency) {
			t.Fatalf("heuristic %v beats optimum %v", c.Latency, opt.Cost.Latency)
		}
		// LPT is a 4/3-approximation of the makespan part; with the w0/s
		// offset the overall ratio can only be smaller.
		if c.Latency > opt.Cost.Latency*4/3+1e-9 {
			t.Errorf("trial %d: LPT gap too large: %v vs %v (fork=%+v p=%d)",
				trial, c.Latency, opt.Cost.Latency, f, pl.Processors())
		}
	}
}

func TestHetForkPeriodGreedyValidAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(4), 12)
		pl := platform.Random(rng, 1+rng.Intn(3), 5)
		m, c, err := HetForkPeriodGreedy(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mapping.EvalFork(f, pl, m); err != nil {
			t.Fatalf("heuristic mapping invalid: %v", err)
		}
		opt, ok := exhaustive.ForkPeriod(f, pl, false)
		if !ok {
			t.Fatal("no optimum")
		}
		if numeric.Less(c.Period, opt.Cost.Period) {
			t.Fatalf("heuristic %v beats optimum %v", c.Period, opt.Cost.Period)
		}
		if c.Period > 2*opt.Cost.Period+1e-9 {
			t.Errorf("trial %d: greedy gap too large: %v vs %v (fork=%+v speeds=%v)",
				trial, c.Period, opt.Cost.Period, f, pl.Speeds)
		}
	}
}

func TestHeuristicsRejectInvalidInputs(t *testing.T) {
	bad := workflow.NewPipeline()
	pl := platform.Homogeneous(2, 1)
	if _, _, err := HetPipelinePeriodNoDP(bad, pl); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, _, err := HetPipelineWithDP(bad, pl, true); err == nil {
		t.Error("empty pipeline accepted")
	}
	badFork := workflow.NewFork(0)
	if _, _, err := HetForkLatencyLPT(badFork, pl); err == nil {
		t.Error("invalid fork accepted")
	}
	if _, _, err := HetForkPeriodGreedy(badFork, pl); err == nil {
		t.Error("invalid fork accepted")
	}
}

func TestTheorem15InstanceHeuristic(t *testing.T) {
	// On the Theorem 15 construction with a yes 2-PARTITION instance the
	// greedy heuristic may or may not find period 1, but must stay sound.
	a := []int{1, 2, 3, 4} // S = 10, partition {1,4}/{2,3}
	S := 10.0
	f := workflow.NewFork(S, 1, 2, 3, 4, S)
	pl := platform.New(5*S/2, S/2)
	_, c, err := HetForkPeriodGreedy(f, pl)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := exhaustive.ForkPeriod(f, pl, false)
	if !numeric.Eq(opt.Cost.Period, 1) {
		t.Fatalf("exhaustive period on yes-instance = %v, want 1 (a=%v)", opt.Cost.Period, a)
	}
	if numeric.Less(c.Period, 1) {
		t.Fatalf("heuristic beats the optimum: %v", c.Period)
	}
}
