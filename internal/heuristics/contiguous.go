package heuristics

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HetPipelineContiguousDP is a polynomial heuristic for the NP-hard
// Theorem 5 cell (pipeline on a Heterogeneous platform with
// data-parallelism) that searches a rich restricted class exactly: stage
// intervals mapped, in order, onto contiguous groups of a speed-sorted
// processor sequence, each group either replicating its interval or
// data-parallelizing a single stage. The dynamic program is run for both
// the ascending and the descending speed order and the better mapping is
// returned (the optimal group for the heavy first stage may need the slow
// or the fast end of the sequence, depending on the instance).
//
// minimizePeriod selects the objective. The restricted class contains the
// true optimum for many instances — including the Section 2 example, where
// it finds latency 8.5 — but not always, hence a heuristic. O(n²·p²).
func HetPipelineContiguousDP(p workflow.Pipeline, pl platform.Platform, minimizePeriod bool) (mapping.PipelineMapping, mapping.Cost, error) {
	if err := p.Validate(); err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return mapping.PipelineMapping{}, mapping.Cost{}, err
	}
	asc := pl.SortedBySpeed()
	desc := make([]int, len(asc))
	for i, q := range asc {
		desc[len(asc)-1-i] = q
	}
	mAsc, cAsc := contiguousDP(p, pl, asc, minimizePeriod)
	mDesc, cDesc := contiguousDP(p, pl, desc, minimizePeriod)
	obj := func(c mapping.Cost) float64 {
		if minimizePeriod {
			return c.Period
		}
		return c.Latency
	}
	if numeric.LessEq(obj(cAsc), obj(cDesc)) {
		return mAsc, cAsc, nil
	}
	return mDesc, cDesc, nil
}

// contiguousChoice records one DP decision.
type contiguousChoice struct {
	last  int // last stage of the interval
	group int // processors taken from the current position
	dp    bool
}

// contiguousDP solves the restricted-class problem exactly for one
// processor order: V(i, u) = best objective for stages i.. using
// processors order[u..].
func contiguousDP(p workflow.Pipeline, pl platform.Platform, order []int, minimizePeriod bool) (mapping.PipelineMapping, mapping.Cost) {
	n, procs := p.Stages(), len(order)
	// Prefix speed sums and suffix minima over the order.
	prefixSum := make([]float64, procs+1)
	for i, q := range order {
		prefixSum[i+1] = prefixSum[i] + pl.Speeds[q]
	}
	groupSum := func(u, g int) float64 { return prefixSum[u+g] - prefixSum[u] }
	groupMin := func(u, g int) float64 {
		m := pl.Speeds[order[u]]
		for i := u + 1; i < u+g; i++ {
			if s := pl.Speeds[order[i]]; s < m {
				m = s
			}
		}
		return m
	}

	memo := make([]float64, (n+1)*(procs+1))
	seen := make([]bool, len(memo))
	choice := make([]contiguousChoice, len(memo))
	id := func(i, u int) int { return i*(procs+1) + u }

	var solve func(i, u int) float64
	solve = func(i, u int) float64 {
		if i == n {
			return 0
		}
		if u == procs {
			return numeric.Inf
		}
		k := id(i, u)
		if seen[k] {
			return memo[k]
		}
		seen[k] = true
		best := numeric.Inf
		var bestChoice contiguousChoice
		w := 0.0
		for j := i; j < n; j++ {
			w += p.Weights[j]
			for g := 1; u+g <= procs; g++ {
				// Replicated interval.
				repDelay := w / groupMin(u, g)
				repPeriod := repDelay / float64(g)
				v := combine(repDelay, repPeriod, solve(j+1, u+g), minimizePeriod)
				if numeric.Less(v, best) {
					best = v
					bestChoice = contiguousChoice{last: j, group: g, dp: false}
				}
				// Data-parallel single stage.
				if i == j {
					dpCost := w / groupSum(u, g)
					v = combine(dpCost, dpCost, solve(j+1, u+g), minimizePeriod)
					if numeric.Less(v, best) {
						best = v
						bestChoice = contiguousChoice{last: j, group: g, dp: true}
					}
				}
			}
		}
		memo[k] = best
		choice[k] = bestChoice
		return best
	}
	solve(0, 0)

	var m mapping.PipelineMapping
	i, u := 0, 0
	for i < n {
		ch := choice[id(i, u)]
		set := make([]int, ch.group)
		copy(set, order[u:u+ch.group])
		mode := mapping.Replicated
		if ch.dp {
			mode = mapping.DataParallel
		}
		m.Intervals = append(m.Intervals, mapping.PipelineInterval{
			First: i, Last: ch.last,
			Assignment: mapping.Assignment{Procs: set, Mode: mode},
		})
		i = ch.last + 1
		u += ch.group
	}
	c := evalPipe(p, pl, m)
	return m, c
}

// combine folds a group's (delay, period) with the remainder's objective
// value.
func combine(delay, period, rest float64, minimizePeriod bool) float64 {
	if minimizePeriod {
		return math.Max(period, rest)
	}
	if math.IsInf(rest, 1) {
		return rest
	}
	return delay + rest
}
