package core

import (
	"testing"

	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func commPipeProblem(speeds []float64, bw fullmodel.Bandwidth, obj Objective) Problem {
	p := fullmodel.NewPipeline([]float64{3, 1, 2}, []float64{1, 2, 1, 1})
	return Problem{
		CommPipeline: &p, Bandwidth: &bw,
		Platform: platform.New(speeds...), Objective: obj,
	}
}

// TestCommValidation: the communication-aware kinds require Bandwidth,
// the simplified-model kinds reject it, and neither comm kind has a
// data-parallel model.
func TestCommValidation(t *testing.T) {
	pr := commPipeProblem([]float64{1, 1}, fullmodel.Bandwidth{Uniform: 4}, MinPeriod)
	if err := pr.Validate(); err != nil {
		t.Fatalf("valid comm pipeline rejected: %v", err)
	}

	noBW := pr
	noBW.Bandwidth = nil
	if err := noBW.Validate(); ErrKindOf(err) != ErrKindInvalidInstance {
		t.Errorf("missing bandwidth accepted: %v", err)
	}

	dp := pr
	dp.AllowDataParallel = true
	if err := dp.Validate(); ErrKindOf(err) != ErrKindInvalidInstance {
		t.Errorf("data-parallelism accepted on comm pipeline: %v", err)
	}

	pipe := workflow.NewPipeline(1, 2)
	legacy := Problem{
		Pipeline: &pipe, Platform: platform.New(1, 1),
		Objective: MinPeriod, Bandwidth: &fullmodel.Bandwidth{Uniform: 1},
	}
	if err := legacy.Validate(); ErrKindOf(err) != ErrKindInvalidInstance {
		t.Errorf("bandwidth accepted on simplified-model pipeline: %v", err)
	}

	badBW := pr
	badBW.Bandwidth = &fullmodel.Bandwidth{Uniform: 1, In: []float64{1, 1}}
	if err := badBW.Validate(); ErrKindOf(err) != ErrKindInvalidInstance {
		t.Errorf("uniform+tables bandwidth accepted: %v", err)
	}
}

// TestCommPipelineDispatch: fully homogeneous platforms take the
// polynomial DP cells, heterogeneous ones the NP-hard exhaustive cell,
// and non-uniform bandwidth alone pushes an instance off the polynomial
// path even with uniform speeds.
func TestCommPipelineDispatch(t *testing.T) {
	hom := commPipeProblem([]float64{1, 1}, fullmodel.Bandwidth{Uniform: 4}, MinPeriod)
	sol, err := Solve(hom, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact || sol.Method != MethodBinarySearchDP || !sol.Feasible {
		t.Errorf("hom min-period solve = %+v, want exact binary-search+DP", sol)
	}
	if sol.CommPipelineMapping == nil {
		t.Error("solution lost its comm mapping")
	}

	homLat := commPipeProblem([]float64{1, 1}, fullmodel.Bandwidth{Uniform: 4}, MinLatency)
	if sol, err = Solve(homLat, Options{}); err != nil {
		t.Fatal(err)
	}
	if !sol.Exact || sol.Method != MethodDP {
		t.Errorf("hom min-latency solve = %+v, want exact DP", sol)
	}

	het := commPipeProblem([]float64{1, 2}, fullmodel.Bandwidth{Uniform: 4}, MinPeriod)
	if key := CellKeyOf(het); key.PlatformHomogeneous {
		t.Fatalf("het speeds classified platform-homogeneous: %v", key)
	}
	if sol, err = Solve(het, Options{}); err != nil {
		t.Fatal(err)
	}
	if !sol.Exact || sol.Method != MethodExhaustive {
		t.Errorf("het solve = %+v, want exact exhaustive", sol)
	}

	// Uniform speeds but non-uniform links: the stricter fully-homogeneous
	// axis of the comm kinds must classify this as heterogeneous.
	unevenLinks := commPipeProblem([]float64{1, 1}, fullmodel.Bandwidth{
		Links: [][]float64{{0, 1}, {3, 0}},
		In:    []float64{2, 2},
		Out:   []float64{2, 2},
	}, MinPeriod)
	if key := CellKeyOf(unevenLinks); key.PlatformHomogeneous {
		t.Errorf("non-uniform bandwidth classified platform-homogeneous: %v", key)
	}
}

// TestCommForkDispatch: the one-port fork is NP-hard on every axis; small
// instances solve exhaustively, oversized ones heuristically — and the
// anytime budget is ignored (the comm kinds have no Anytime capability).
func TestCommForkDispatch(t *testing.T) {
	f := fullmodel.Fork{Root: 2, In: 1, Out0: 1, Weights: []float64{3, 1}, Outs: []float64{1, 1}}
	pr := Problem{
		CommFork: &f, Bandwidth: &fullmodel.Bandwidth{Uniform: 2},
		Platform: platform.New(1, 2, 1), Objective: MinPeriod,
	}
	cl, err := Classify(pr)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Complexity.Polynomial() {
		t.Fatalf("one-port fork classified polynomial: %+v", cl)
	}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact || sol.Method != MethodExhaustive || sol.CommForkMapping == nil {
		t.Errorf("small solve = %+v, want exact exhaustive with mapping", sol)
	}

	big := fullmodel.Fork{
		Root: 2, In: 1, Out0: 1,
		Weights: []float64{3, 1, 2, 4, 1, 2, 3, 1},
		Outs:    []float64{1, 1, 1, 1, 1, 1, 1, 1},
	}
	prBig := Problem{
		CommFork: &big, Bandwidth: &fullmodel.Bandwidth{Uniform: 2},
		Platform: platform.New(1, 2, 1, 1, 2, 1), Objective: MinPeriod,
	}
	if sol, err = Solve(prBig, Options{}); err != nil {
		t.Fatal(err)
	}
	if sol.Exact || sol.Method != MethodHeuristic {
		t.Errorf("oversized solve = %+v, want heuristic", sol)
	}
	budgeted, err := Solve(prBig, Options{AnytimeBudget: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Anytime || budgeted.Method != sol.Method || budgeted.Cost != sol.Cost {
		t.Errorf("budget changed a kind without the Anytime capability: %+v vs %+v", budgeted, sol)
	}
}
