package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// spFromPipeline expresses a legacy pipeline as a chain-shaped SP graph
// in canonical stage order.
func spFromPipeline(p workflow.Pipeline) workflow.SP {
	steps := make([]workflow.SPStep, len(p.Weights))
	for i, w := range p.Weights {
		steps[i] = workflow.SPStep{Name: fmt.Sprintf("s%d", i), Weight: w}
		if i > 0 {
			steps[i].After = []string{fmt.Sprintf("s%d", i-1)}
		}
	}
	return workflow.NewSP(steps...)
}

// spFromFork expresses a legacy fork as an SP graph: the root step, then
// the leaves in canonical order.
func spFromFork(f workflow.Fork) workflow.SP {
	steps := make([]workflow.SPStep, 0, 1+len(f.Weights))
	steps = append(steps, workflow.SPStep{Name: "root", Weight: f.Root})
	for i, w := range f.Weights {
		steps = append(steps, workflow.SPStep{
			Name: fmt.Sprintf("l%d", i), Weight: w, After: []string{"root"},
		})
	}
	return workflow.NewSP(steps...)
}

// spFromForkJoin adds the join step after every leaf.
func spFromForkJoin(fj workflow.ForkJoin) workflow.SP {
	steps := make([]workflow.SPStep, 0, 2+len(fj.Weights))
	steps = append(steps, workflow.SPStep{Name: "root", Weight: fj.Root})
	after := make([]string, len(fj.Weights))
	for i, w := range fj.Weights {
		steps = append(steps, workflow.SPStep{
			Name: fmt.Sprintf("l%d", i), Weight: w, After: []string{"root"},
		})
		after[i] = fmt.Sprintf("l%d", i)
	}
	steps = append(steps, workflow.SPStep{Name: "join", Weight: fj.Join, After: after})
	return workflow.NewSP(steps...)
}

// TestSPReductionMatchesLegacySolvers is the decomposition-equivalence
// corpus: a legacy graph expressed as an SP graph solves to the same
// cost, method and exactness, with the embedded legacy mapping identical
// to solving the legacy instance directly.
func TestSPReductionMatchesLegacySolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	objs := []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency}
	for trial := 0; trial < 24; trial++ {
		obj := objs[trial%4]
		oversized := trial%2 == 1
		legacy := Problem{Objective: obj, Platform: platform.Random(rng, 2+rng.Intn(3), 5)}
		if oversized {
			legacy.Platform = platform.Random(rng, 8+rng.Intn(4), 5)
		}
		var g workflow.SP
		var wantReduced workflow.Kind
		switch trial % 3 {
		case 0:
			p := workflow.RandomPipeline(rng, 3+rng.Intn(4), 9)
			legacy.Pipeline = &p
			g, wantReduced = spFromPipeline(p), workflow.KindPipeline
		case 1:
			// At least two leaves: a one-leaf fork is a chain and reduces
			// as a pipeline instead.
			f := workflow.RandomFork(rng, 2+rng.Intn(3), 9)
			legacy.Fork = &f
			g, wantReduced = spFromFork(f), workflow.KindFork
		default:
			fj := workflow.RandomForkJoin(rng, 2+rng.Intn(3), 9)
			legacy.ForkJoin = &fj
			g, wantReduced = spFromForkJoin(fj), workflow.KindForkJoin
		}
		if obj.Bounded() {
			legacy.Bound = 500
		}
		sp := legacy
		sp.Pipeline, sp.Fork, sp.ForkJoin = nil, nil, nil
		sp.SP = &g

		want, err := Solve(legacy, Options{})
		if err != nil {
			t.Fatalf("trial %d: legacy solve: %v", trial, err)
		}
		got, err := Solve(sp, Options{})
		if err != nil {
			t.Fatalf("trial %d: sp solve: %v", trial, err)
		}
		if got.Cost != want.Cost || got.Method != want.Method || got.Exact != want.Exact || got.Feasible != want.Feasible {
			t.Errorf("trial %d (%v): sp solve (%v, %v, exact %v) != legacy (%v, %v, exact %v)",
				trial, wantReduced, got.Cost, got.Method, got.Exact, want.Cost, want.Method, want.Exact)
			continue
		}
		if !want.Feasible {
			continue
		}
		if got.SPMapping == nil || got.SPMapping.Reduced != wantReduced {
			t.Errorf("trial %d: sp mapping = %+v, want a %v reduction", trial, got.SPMapping, wantReduced)
			continue
		}
		var embedded, direct any
		switch wantReduced {
		case workflow.KindPipeline:
			embedded, direct = got.SPMapping.Pipeline, want.PipelineMapping
		case workflow.KindFork:
			embedded, direct = got.SPMapping.Fork, want.ForkMapping
		default:
			embedded, direct = got.SPMapping.ForkJoin, want.ForkJoinMapping
		}
		if !reflect.DeepEqual(embedded, direct) {
			t.Errorf("trial %d (%v): embedded mapping %v != direct legacy mapping %v",
				trial, wantReduced, embedded, direct)
		}
	}
}

// irreducibleSP returns the chorded diamond: series-parallel but none of
// the legacy shapes.
func irreducibleSP() workflow.SP {
	return workflow.NewSP(
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"a", "b"}},
		workflow.SPStep{Name: "d", Weight: 1, After: []string{"b", "c"}},
	)
}

// TestSPIrreducibleExhaustiveAndAnytime: within the limits the block
// enumeration is exact, and the budgeted path certifies the same optimum
// with gap 0.
func TestSPIrreducibleExhaustiveAndAnytime(t *testing.T) {
	g := irreducibleSP()
	pr := Problem{SP: &g, Platform: platform.New(1, 2), Objective: MinPeriod}
	exact, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact || exact.Method != MethodExhaustive || !exact.Feasible {
		t.Fatalf("exhaustive solve = %+v, want exact", exact)
	}
	if exact.SPMapping == nil || exact.SPMapping.Reduced != workflow.KindSP || len(exact.SPMapping.Blocks) == 0 {
		t.Fatalf("mapping = %+v, want direct sp blocks", exact.SPMapping)
	}
	any, err := Solve(pr, Options{AnytimeBudget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !any.Anytime || !any.Exact || any.Gap != 0 {
		t.Fatalf("anytime solve = %+v, want certified optimum", any)
	}
	if any.Cost.Period != exact.Cost.Period {
		t.Errorf("anytime period %g != exhaustive optimum %g", any.Cost.Period, exact.Cost.Period)
	}
}

// TestSPOversizedIrreducibleAnytimeGap: beyond the limits the budgeted
// path yields a feasible incumbent with a certified non-negative gap, no
// worse than the unbudgeted heuristic.
func TestSPOversizedIrreducibleAnytimeGap(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	// Random SP graphs above the 6-step limit; skip those that happen to
	// reduce (the decomposition path is covered elsewhere).
	for trial := 0; trial < 6; trial++ {
		g := workflow.RandomSP(rng, 8+rng.Intn(4), 9, 4, 3)
		pr := Problem{SP: &g, Platform: platform.Random(rng, 3+rng.Intn(3), 5), Objective: MinPeriod}
		heur, err := Solve(pr, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if heur.Method != MethodHeuristic {
			continue // reduced onto a legacy shape
		}
		any, err := Solve(pr, Options{AnytimeBudget: 50 * time.Millisecond})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !any.Anytime || !any.Feasible {
			t.Fatalf("trial %d: anytime solve = %+v, want feasible incumbent", trial, any)
		}
		if any.Gap < 0 {
			t.Errorf("trial %d: negative gap %g", trial, any.Gap)
		}
		if any.Cost.Period > heur.Cost.Period*(1+1e-9) {
			t.Errorf("trial %d: anytime period %g worse than heuristic %g", trial, any.Cost.Period, heur.Cost.Period)
		}
	}
}

// TestSPValidation: the SP kind rejects data-parallelism and bandwidth.
func TestSPValidation(t *testing.T) {
	g := irreducibleSP()
	pr := Problem{SP: &g, Platform: platform.New(1, 2), Objective: MinPeriod, AllowDataParallel: true}
	if err := pr.Validate(); ErrKindOf(err) != ErrKindInvalidInstance {
		t.Errorf("AllowDataParallel accepted on sp: %v", err)
	}
	pr = Problem{SP: &g, Platform: platform.New(1, 2), Objective: MinPeriod, Bandwidth: &fullmodel.Bandwidth{Uniform: 1}}
	if err := pr.Validate(); ErrKindOf(err) != ErrKindInvalidInstance {
		t.Errorf("Bandwidth accepted on sp: %v", err)
	}
}
