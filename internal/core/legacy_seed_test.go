// The seed's if-chain dispatch, preserved verbatim (modulo legacy~ renames)
// from before the solver-registry refactor. It exists only as the reference
// oracle for TestRegistryMatchesSeedDispatch: the registry-driven
// Solve/SolveContext must return byte-identical mappings and costs on a
// randomized corpus covering every Table 1 cell.
package core

import (
	"repliflow/internal/exhaustive"
	"repliflow/internal/forkalgo"
	"repliflow/internal/heuristics"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/pipealgo"
	"repliflow/internal/workflow"
)

// legacySolve is the seed's core.Solve.
func legacySolve(pr Problem, opts Options) (Solution, error) {
	if err := pr.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.Normalized()
	switch {
	case pr.Pipeline != nil:
		return legacySolvePipeline(pr, opts)
	case pr.Fork != nil:
		return legacySolveFork(pr, opts)
	default:
		return legacySolveForkJoin(pr, opts)
	}
}

func legacySolvePipeline(pr Problem, opts Options) (Solution, error) {
	p := *pr.Pipeline
	pl := pr.Platform
	cl, err := Classify(pr)
	if err != nil {
		return Solution{}, err
	}
	if pl.IsHomogeneous() {
		return legacySolvePipelineHom(pr, p, cl)
	}
	if pr.AllowDataParallel {
		return legacySolvePipelineHard(pr, p, cl, opts), nil
	}
	return legacySolvePipelineHetNoDP(pr, p, cl, opts)
}

func legacySolvePipelineHom(pr Problem, p workflow.Pipeline, cl Classification) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinPeriod:
		res, err := pipealgo.HomPeriod(p, pl)
		if err != nil {
			return Solution{}, err
		}
		return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
	case MinLatency:
		if !pr.AllowDataParallel {
			res, err := pipealgo.HomLatencyNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		res, err := pipealgo.HomLatencyDP(p, pl)
		if err != nil {
			return Solution{}, err
		}
		return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		if !pr.AllowDataParallel {
			res, err := pipealgo.HomBiCriteriaNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			if numeric.Greater(res.Cost.Period, pr.Bound) {
				return infeasible(MethodClosedForm, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		res, ok, err := pipealgo.HomLatencyUnderPeriodDP(p, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default: // PeriodUnderLatency
		if !pr.AllowDataParallel {
			res, err := pipealgo.HomBiCriteriaNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			if numeric.Greater(res.Cost.Latency, pr.Bound) {
				return infeasible(MethodClosedForm, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		res, ok, err := pipealgo.HomPeriodUnderLatencyDP(p, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func legacySolvePipelineHetNoDP(pr Problem, p workflow.Pipeline, cl Classification, opts Options) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinLatency:
		res, err := pipealgo.HetLatencyNoDP(p, pl)
		if err != nil {
			return Solution{}, err
		}
		return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
	case MinPeriod:
		if p.IsHomogeneous() {
			res, err := pipealgo.HetHomPipelinePeriodNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
		}
		return legacySolvePipelineHard(pr, p, cl, opts), nil
	case LatencyUnderPeriod:
		if p.IsHomogeneous() {
			res, ok, err := pipealgo.HetHomPipelineLatencyUnderPeriodNoDP(p, pl, pr.Bound)
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodBinarySearchDP, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
		}
		return legacySolvePipelineHard(pr, p, cl, opts), nil
	default: // PeriodUnderLatency
		if p.IsHomogeneous() {
			res, ok, err := pipealgo.HetHomPipelinePeriodUnderLatencyNoDP(p, pl, pr.Bound)
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodBinarySearchDP, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
		}
		return legacySolvePipelineHard(pr, p, cl, opts), nil
	}
}

func legacySolvePipelineHard(pr Problem, p workflow.Pipeline, cl Classification, opts Options) Solution {
	pl := pr.Platform
	dp := pr.AllowDataParallel
	if pl.Processors() <= opts.MaxExhaustivePipelineProcs {
		var res exhaustive.PipelineResult
		var ok bool
		switch pr.Objective {
		case MinPeriod:
			res, ok = exhaustive.PipelinePeriod(p, pl, dp)
		case MinLatency:
			res, ok = exhaustive.PipelineLatency(p, pl, dp)
		case LatencyUnderPeriod:
			res, ok = exhaustive.PipelineLatencyUnderPeriod(p, pl, dp, pr.Bound)
		default:
			res, ok = exhaustive.PipelinePeriodUnderLatency(p, pl, dp, pr.Bound)
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl)
		}
		return pipeSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl)
	}
	var maps []mapping.PipelineMapping
	var costs []mapping.Cost
	add := func(m mapping.PipelineMapping, c mapping.Cost, err error) {
		if err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	if dp {
		m, c, err := heuristics.HetPipelineWithDP(p, pl, pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency)
		add(m, c, err)
		m, c, err = heuristics.HetPipelineWithDP(p, pl, false)
		add(m, c, err)
	}
	m, c, err := heuristics.HetPipelinePeriodNoDP(p, pl)
	add(m, c, err)
	{
		res, err := pipealgo.HetLatencyNoDP(p, pl)
		add(res.Mapping, res.Cost, err)
	}
	idx, okBest := pickBestIndex(costs, pr)
	if !okBest {
		return infeasible(MethodHeuristic, false, cl)
	}
	return pipeSolution(maps[idx], costs[idx], MethodHeuristic, false, cl)
}

func legacySolveFork(pr Problem, opts Options) (Solution, error) {
	f := *pr.Fork
	pl := pr.Platform
	cl, err := Classify(pr)
	if err != nil {
		return Solution{}, err
	}

	if pl.IsHomogeneous() {
		if pr.Objective == MinPeriod {
			res, err := forkalgo.HomForkPeriod(f, pl)
			if err != nil {
				return Solution{}, err
			}
			return forkSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		if f.IsHomogeneous() {
			return legacySolveForkTheorem11(pr, f, cl)
		}
		return legacySolveForkHard(pr, f, cl, opts), nil
	}

	if !pr.AllowDataParallel && f.IsHomogeneous() {
		return legacySolveForkTheorem14(pr, f, cl)
	}
	return legacySolveForkHard(pr, f, cl, opts), nil
}

func legacySolveForkTheorem11(pr Problem, f workflow.Fork, cl Classification) (Solution, error) {
	pl, dp := pr.Platform, pr.AllowDataParallel
	switch pr.Objective {
	case MinLatency:
		res, err := forkalgo.HomForkLatency(f, pl, dp)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HomForkLatencyUnderPeriod(f, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default: // PeriodUnderLatency
		res, ok, err := forkalgo.HomForkPeriodUnderLatency(f, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func legacySolveForkTheorem14(pr Problem, f workflow.Fork, cl Classification) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinPeriod:
		res, err := forkalgo.HetHomForkPeriodNoDP(f, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case MinLatency:
		res, err := forkalgo.HetHomForkLatencyNoDP(f, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HetHomForkLatencyUnderPeriodNoDP(f, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HetHomForkPeriodUnderLatencyNoDP(f, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	}
}

func legacySolveForkHard(pr Problem, f workflow.Fork, cl Classification, opts Options) Solution {
	pl, dp := pr.Platform, pr.AllowDataParallel
	if f.Leaves()+1 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		var res exhaustive.ForkResult
		var ok bool
		switch pr.Objective {
		case MinPeriod:
			res, ok = exhaustive.ForkPeriod(f, pl, dp)
		case MinLatency:
			res, ok = exhaustive.ForkLatency(f, pl, dp)
		case LatencyUnderPeriod:
			res, ok = exhaustive.ForkLatencyUnderPeriod(f, pl, dp, pr.Bound)
		default:
			res, ok = exhaustive.ForkPeriodUnderLatency(f, pl, dp, pr.Bound)
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl)
		}
		return forkSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl)
	}
	var maps []mapping.ForkMapping
	var costs []mapping.Cost
	add := func(m mapping.ForkMapping) {
		if c, err := mapping.EvalFork(f, pl, m); err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	add(mapping.ReplicateAllFork(f, pl))
	add(wholeForkOnProcessor(f, pl.Fastest()))
	if m, _, err := heuristics.HetForkPeriodGreedy(f, pl); err == nil {
		add(m)
	}
	if pl.IsHomogeneous() {
		if m, _, err := heuristics.HetForkLatencyLPT(f, pl); err == nil {
			add(m)
		}
	}
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl)
	}
	best, bestCost := maps[idx], costs[idx]
	obj := heuristics.ForkMinLatency
	if pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency {
		obj = heuristics.ForkMinPeriod
	}
	if m, c, err := heuristics.LocalSearchFork(f, pl, best, obj); err == nil {
		ok := true
		switch pr.Objective {
		case LatencyUnderPeriod:
			ok = !numeric.Greater(c.Period, pr.Bound)
		case PeriodUnderLatency:
			ok = !numeric.Greater(c.Latency, pr.Bound)
		}
		if ok && numeric.Less(objectiveValue(c, pr.Objective), objectiveValue(bestCost, pr.Objective)) {
			best, bestCost = m, c
		}
	}
	return forkSolution(best, bestCost, MethodHeuristic, false, cl)
}

func legacySolveForkJoin(pr Problem, opts Options) (Solution, error) {
	fj := *pr.ForkJoin
	pl := pr.Platform
	cl, err := Classify(pr)
	if err != nil {
		return Solution{}, err
	}

	if pl.IsHomogeneous() {
		if pr.Objective == MinPeriod {
			res, err := forkalgo.HomForkJoinPeriod(fj, pl)
			if err != nil {
				return Solution{}, err
			}
			return forkJoinSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		if fj.IsHomogeneous() {
			return legacySolveForkJoinTheorem11(pr, fj, cl)
		}
		return legacySolveForkJoinHard(pr, fj, cl, opts), nil
	}
	if !pr.AllowDataParallel && fj.IsHomogeneous() {
		return legacySolveForkJoinTheorem14(pr, fj, cl)
	}
	return legacySolveForkJoinHard(pr, fj, cl, opts), nil
}

func legacySolveForkJoinTheorem11(pr Problem, fj workflow.ForkJoin, cl Classification) (Solution, error) {
	pl, dp := pr.Platform, pr.AllowDataParallel
	switch pr.Objective {
	case MinLatency:
		res, err := forkalgo.HomForkJoinLatency(fj, pl, dp)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HomForkJoinLatencyUnderPeriod(fj, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HomForkJoinPeriodUnderLatency(fj, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func legacySolveForkJoinTheorem14(pr Problem, fj workflow.ForkJoin, cl Classification) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinPeriod:
		res, err := forkalgo.HetHomForkJoinPeriodNoDP(fj, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case MinLatency:
		res, err := forkalgo.HetHomForkJoinLatencyNoDP(fj, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HetHomForkJoinLatencyUnderPeriodNoDP(fj, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HetHomForkJoinPeriodUnderLatencyNoDP(fj, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	}
}

func legacySolveForkJoinHard(pr Problem, fj workflow.ForkJoin, cl Classification, opts Options) Solution {
	pl, dp := pr.Platform, pr.AllowDataParallel
	if fj.Leaves()+2 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		var res exhaustive.ForkJoinResult
		var ok bool
		switch pr.Objective {
		case MinPeriod:
			res, ok = exhaustive.ForkJoinPeriod(fj, pl, dp)
		case MinLatency:
			res, ok = exhaustive.ForkJoinLatency(fj, pl, dp)
		case LatencyUnderPeriod:
			res, ok = exhaustive.ForkJoinLatencyUnderPeriod(fj, pl, dp, pr.Bound)
		default:
			res, ok = exhaustive.ForkJoinPeriodUnderLatency(fj, pl, dp, pr.Bound)
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl)
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl)
	}
	var maps []mapping.ForkJoinMapping
	var costs []mapping.Cost
	add := func(m mapping.ForkJoinMapping) {
		if c, err := mapping.EvalForkJoin(fj, pl, m); err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	add(mapping.ReplicateAllForkJoin(fj, pl))
	add(wholeForkJoinOnProcessor(fj, pl.Fastest()))
	minPeriod := pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency
	if m, _, err := heuristics.HetForkJoinGreedy(fj, pl, minPeriod); err == nil {
		add(m)
	}
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl)
	}
	return forkJoinSolution(maps[idx], costs[idx], MethodHeuristic, false, cl)
}
