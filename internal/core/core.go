package core

import (
	"fmt"
	"strings"

	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Objective selects what to optimize.
type Objective int

const (
	// MinPeriod minimizes the period (maximizes throughput).
	MinPeriod Objective = iota
	// MinLatency minimizes the latency (response time).
	MinLatency
	// LatencyUnderPeriod minimizes the latency among mappings whose period
	// does not exceed Problem.Bound.
	LatencyUnderPeriod
	// PeriodUnderLatency minimizes the period among mappings whose latency
	// does not exceed Problem.Bound.
	PeriodUnderLatency
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinPeriod:
		return "min-period"
	case MinLatency:
		return "min-latency"
	case LatencyUnderPeriod:
		return "latency-under-period"
	case PeriodUnderLatency:
		return "period-under-latency"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Bounded reports whether the objective carries a threshold.
func (o Objective) Bounded() bool {
	return o == LatencyUnderPeriod || o == PeriodUnderLatency
}

// Problem is a full instance of the mapping problem: exactly one of the
// graph fields must be non-nil. Pipeline, Fork and ForkJoin are the three
// legacy shapes of the simplified model; SP is a general series-parallel
// DAG solved by decomposition; CommPipeline and CommFork are the
// communication-aware variants of Sections 3.2-3.3 and require Bandwidth.
type Problem struct {
	Pipeline *workflow.Pipeline
	Fork     *workflow.Fork
	ForkJoin *workflow.ForkJoin
	SP       *workflow.SP
	// CommPipeline and CommFork are communication-aware instances: stage
	// weights plus inter-stage data sizes, priced against Bandwidth.
	CommPipeline *fullmodel.Pipeline
	CommFork     *fullmodel.Fork
	// Bandwidth describes the interconnect of a communication-aware
	// instance (required with CommPipeline/CommFork, rejected otherwise).
	Bandwidth *fullmodel.Bandwidth

	Platform          platform.Platform
	AllowDataParallel bool
	Objective         Objective
	// Bound is the threshold of a bi-criteria objective.
	Bound float64
}

// Validate checks the problem is well formed. Every failure carries
// ErrKindInvalidInstance, recoverable through ErrKindOf.
func (pr Problem) Validate() error {
	return WithErrKind(ErrKindInvalidInstance, pr.validate())
}

func (pr Problem) validate() error {
	var spec *KindSpec
	count := 0
	for _, s := range kindSpecList {
		if s.HasGraph(pr) {
			count++
			spec = s
		}
	}
	if count != 1 {
		names := make([]string, len(kindSpecList))
		for i, s := range kindSpecList {
			names[i] = s.Name
		}
		return fmt.Errorf("core: exactly one of the graph fields (%s) must be set", strings.Join(names, ", "))
	}
	if err := spec.ValidateGraph(pr); err != nil {
		return err
	}
	if pr.AllowDataParallel && !spec.DataParallel {
		return fmt.Errorf("core: kind %s has no data-parallel mapping model", spec.Name)
	}
	if err := pr.Platform.Validate(); err != nil {
		return err
	}
	if spec.NeedsBandwidth {
		if pr.Bandwidth == nil {
			return fmt.Errorf("core: kind %s requires Bandwidth", spec.Name)
		}
		if err := pr.Bandwidth.Validate(pr.Platform.Processors()); err != nil {
			return err
		}
	} else if pr.Bandwidth != nil {
		return fmt.Errorf("core: kind %s does not take Bandwidth", spec.Name)
	}
	if pr.Objective.Bounded() && pr.Bound <= 0 {
		return fmt.Errorf("core: bounded objective %v requires a positive Bound", pr.Objective)
	}
	switch pr.Objective {
	case MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency:
	default:
		return fmt.Errorf("core: unknown objective %d", int(pr.Objective))
	}
	return nil
}

// graphKind returns the graph kind of the problem.
func (pr Problem) graphKind() workflow.Kind {
	if spec := specOf(pr); spec != nil {
		return spec.Kind
	}
	return workflow.Kind(-1)
}

// graphHomogeneous reports whether all (leaf) stage weights are equal —
// the "homogeneous pipeline / fork" rows of Table 1.
func (pr Problem) graphHomogeneous() bool {
	spec := specOf(pr)
	return spec != nil && spec.GraphHomogeneous(pr)
}

// platformHomogeneous is the platform axis of the problem's cell: the
// speed-only test by default, overridden per kind (communication-aware
// kinds include bandwidths).
func (pr Problem) platformHomogeneous() bool {
	if spec := specOf(pr); spec != nil && spec.PlatformHomogeneous != nil {
		return spec.PlatformHomogeneous(pr)
	}
	return pr.Platform.IsHomogeneous()
}
