package core

import (
	"errors"
	"fmt"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Objective selects what to optimize.
type Objective int

const (
	// MinPeriod minimizes the period (maximizes throughput).
	MinPeriod Objective = iota
	// MinLatency minimizes the latency (response time).
	MinLatency
	// LatencyUnderPeriod minimizes the latency among mappings whose period
	// does not exceed Problem.Bound.
	LatencyUnderPeriod
	// PeriodUnderLatency minimizes the period among mappings whose latency
	// does not exceed Problem.Bound.
	PeriodUnderLatency
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinPeriod:
		return "min-period"
	case MinLatency:
		return "min-latency"
	case LatencyUnderPeriod:
		return "latency-under-period"
	case PeriodUnderLatency:
		return "period-under-latency"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Bounded reports whether the objective carries a threshold.
func (o Objective) Bounded() bool {
	return o == LatencyUnderPeriod || o == PeriodUnderLatency
}

// Problem is a full instance of the mapping problem: exactly one of
// Pipeline, Fork, ForkJoin must be non-nil.
type Problem struct {
	Pipeline *workflow.Pipeline
	Fork     *workflow.Fork
	ForkJoin *workflow.ForkJoin

	Platform          platform.Platform
	AllowDataParallel bool
	Objective         Objective
	// Bound is the threshold of a bi-criteria objective.
	Bound float64
}

// Validate checks the problem is well formed. Every failure carries
// ErrKindInvalidInstance, recoverable through ErrKindOf.
func (pr Problem) Validate() error {
	return WithErrKind(ErrKindInvalidInstance, pr.validate())
}

func (pr Problem) validate() error {
	count := 0
	if pr.Pipeline != nil {
		count++
		if err := pr.Pipeline.Validate(); err != nil {
			return err
		}
	}
	if pr.Fork != nil {
		count++
		if err := pr.Fork.Validate(); err != nil {
			return err
		}
	}
	if pr.ForkJoin != nil {
		count++
		if err := pr.ForkJoin.Validate(); err != nil {
			return err
		}
	}
	if count != 1 {
		return errors.New("core: exactly one of Pipeline, Fork, ForkJoin must be set")
	}
	if err := pr.Platform.Validate(); err != nil {
		return err
	}
	if pr.Objective.Bounded() && pr.Bound <= 0 {
		return fmt.Errorf("core: bounded objective %v requires a positive Bound", pr.Objective)
	}
	switch pr.Objective {
	case MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency:
	default:
		return fmt.Errorf("core: unknown objective %d", int(pr.Objective))
	}
	return nil
}

// graphKind returns the graph kind of the problem.
func (pr Problem) graphKind() workflow.Kind {
	switch {
	case pr.Pipeline != nil:
		return workflow.KindPipeline
	case pr.Fork != nil:
		return workflow.KindFork
	default:
		return workflow.KindForkJoin
	}
}

// graphHomogeneous reports whether all (leaf) stage weights are equal —
// the "homogeneous pipeline / fork" rows of Table 1.
func (pr Problem) graphHomogeneous() bool {
	switch {
	case pr.Pipeline != nil:
		return pr.Pipeline.IsHomogeneous()
	case pr.Fork != nil:
		return pr.Fork.IsHomogeneous()
	default:
		return pr.ForkJoin.IsHomogeneous()
	}
}
