package core

import "errors"

// ErrKind classifies the errors returned by this package into
// machine-readable categories, so callers exposing solves over a wire
// protocol (cmd/wfserve) can map failures to protocol-level codes without
// parsing error strings. The kind travels with the error through
// fmt.Errorf("...: %w", err) wrapping and is recovered by ErrKindOf.
type ErrKind int

const (
	// ErrKindUnknown marks errors this package does not classify:
	// context cancellation, I/O failures wrapped by callers, and so on.
	ErrKindUnknown ErrKind = iota
	// ErrKindInvalidInstance marks ill-formed problem instances rejected
	// by Problem.Validate: zero or several graphs, non-positive weights
	// or speeds, a bounded objective without a positive bound, or an
	// unknown objective.
	ErrKindInvalidInstance
	// ErrKindNoSolver marks a dispatch cell with no registered solver.
	// Unreachable while the registry-completeness test passes.
	ErrKindNoSolver
	// ErrKindUnsupportedKind marks a workflow kind (or kind name) with no
	// registered capability spec: every dispatch site that used to have a
	// silent `default:` branch now returns this instead of misclassifying
	// the instance as the last enum value.
	ErrKindUnsupportedKind
)

// String implements fmt.Stringer with stable wire-friendly names.
func (k ErrKind) String() string {
	switch k {
	case ErrKindInvalidInstance:
		return "invalid-instance"
	case ErrKindNoSolver:
		return "no-solver"
	case ErrKindUnsupportedKind:
		return "unsupported-kind"
	default:
		return "unknown"
	}
}

// kindError attaches an ErrKind to an error without altering its message.
type kindError struct {
	kind ErrKind
	err  error
}

func (e *kindError) Error() string { return e.err.Error() }
func (e *kindError) Unwrap() error { return e.err }

// WithErrKind wraps err with a machine-readable kind, preserving its
// message and unwrap chain. A nil err stays nil.
func WithErrKind(kind ErrKind, err error) error {
	if err == nil {
		return nil
	}
	return &kindError{kind: kind, err: err}
}

// ErrKindOf returns the ErrKind attached to err (anywhere along its
// unwrap chain), or ErrKindUnknown for unclassified errors.
func ErrKindOf(err error) ErrKind {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.kind
	}
	return ErrKindUnknown
}
