package core

import (
	"context"
	"testing"

	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/spdecomp"
	"repliflow/internal/workflow"
)

// Allocation ceilings for warm prepared solves. A warm solve is a memo
// hit: it must only pay for the defensive clone of the memoized mapping
// (the sweep loop holds solutions while the prepared solver keeps
// serving), never for re-deriving DP tables, candidate sets, or platform
// tables. The ceilings have headroom over the measured costs but sit far
// below a cold solve, so a regression that re-runs any real work trips
// them immediately.

// TestPreparedSPSolveAllocs: warm prepared solves of an irreducible SP
// instance stay within the clone-only budget.
func TestPreparedSPSolveAllocs(t *testing.T) {
	g := workflow.NewSP(
		workflow.SPStep{Name: "a", Weight: 3},
		workflow.SPStep{Name: "b", Weight: 2},
		workflow.SPStep{Name: "c", Weight: 4, After: workflow.After("a")},
		workflow.SPStep{Name: "d", Weight: 1, After: workflow.After("a", "b")},
		workflow.SPStep{Name: "e", Weight: 2, After: workflow.After("c", "d")},
	)
	if _, ok := spdecomp.Reduce(g); ok {
		t.Fatal("fixture reduced to a legacy kind; the test needs the irreducible SP path")
	}
	pr := Problem{SP: &g, Platform: platform.New(3, 2, 1)}
	ps, ok := Prepare(pr, Options{})
	if !ok {
		t.Fatal("Prepare refused an irreducible SP instance")
	}
	ctx := context.Background()
	for _, obj := range []Objective{MinPeriod, MinLatency} {
		if _, err := ps.Solve(ctx, obj, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, obj := range []Objective{MinPeriod, MinLatency} {
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := ps.Solve(ctx, obj, 0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 12 {
			t.Errorf("warm prepared SP solve (%v): %.0f allocs, want <= 12", obj, allocs)
		}
	}
}

// TestPreparedCommSolveAllocs: warm prepared comm-pipeline and comm-fork
// solves stay within the clone-only budget, on both the heterogeneous
// exhaustive path and the homogeneous DP path.
func TestPreparedCommSolveAllocs(t *testing.T) {
	ctx := context.Background()
	p := fullmodel.NewPipeline([]float64{3, 1, 2, 2}, []float64{1, 2, 1, 0, 1})
	f := fullmodel.Fork{Root: 2, In: 1, Out0: 1, Weights: []float64{4, 2, 3}, Outs: []float64{1, 0, 2}}
	cases := []struct {
		name string
		pr   Problem
	}{
		{"pipeline-het", Problem{CommPipeline: &p, Bandwidth: &fullmodel.Bandwidth{Uniform: 2}, Platform: platform.New(1, 2, 1)}},
		{"pipeline-hom", Problem{CommPipeline: &p, Bandwidth: &fullmodel.Bandwidth{Uniform: 2}, Platform: platform.Homogeneous(3, 2)}},
		{"fork", Problem{CommFork: &f, Bandwidth: &fullmodel.Bandwidth{Uniform: 2}, Platform: platform.New(1, 2, 1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps, ok := Prepare(tc.pr, Options{})
			if !ok {
				t.Fatal("Prepare refused a communication-aware instance")
			}
			for _, obj := range []Objective{MinPeriod, MinLatency} {
				if _, err := ps.Solve(ctx, obj, 0); err != nil {
					t.Fatal(err)
				}
			}
			for _, obj := range []Objective{MinPeriod, MinLatency} {
				allocs := testing.AllocsPerRun(100, func() {
					if _, err := ps.Solve(ctx, obj, 0); err != nil {
						t.Fatal(err)
					}
				})
				if allocs > 8 {
					t.Errorf("warm prepared comm solve (%s, %v): %.0f allocs, want <= 8", tc.name, obj, allocs)
				}
			}
		})
	}
}
