package core

import (
	"fmt"

	"repliflow/internal/workflow"
)

// Complexity is the Table 1 classification of a problem instance.
type Complexity int

const (
	// PolyStraightforward marks cells the paper labels "Poly (str)".
	PolyStraightforward Complexity = iota
	// PolyDP marks cells solved by a dynamic programming algorithm,
	// "Poly (DP)".
	PolyDP
	// PolyBinarySearchDP marks the starred cells solved by binary search
	// combined with dynamic programming, "Poly (*)".
	PolyBinarySearchDP
	// NPHard marks the NP-hard cells.
	NPHard
)

// String implements fmt.Stringer using the paper's Table 1 labels.
func (c Complexity) String() string {
	switch c {
	case PolyStraightforward:
		return "Poly (str)"
	case PolyDP:
		return "Poly (DP)"
	case PolyBinarySearchDP:
		return "Poly (*)"
	case NPHard:
		return "NP-hard"
	default:
		return fmt.Sprintf("Complexity(%d)", int(c))
	}
}

// Polynomial reports whether the cell admits a polynomial algorithm.
func (c Complexity) Polynomial() bool { return c != NPHard }

// Classification names the Table 1 cell of an instance and the result that
// establishes it.
type Classification struct {
	Complexity Complexity
	// Source cites the theorem (or derived entry) establishing the cell.
	Source string
}

// Classify returns the Table 1 cell of the problem. Fork-join graphs
// classify exactly as forks (Section 6.3).
func Classify(pr Problem) (Classification, error) {
	if err := pr.Validate(); err != nil {
		return Classification{}, err
	}
	return ClassifyCell(CellKeyOf(pr)), nil
}

// ClassifyCell returns the Table 1 classification of a dispatch cell
// without constructing an instance: ClassifyCell(CellKeyOf(pr)) equals
// Classify(pr) for every valid problem pr. It lets registry consumers
// (wftable, the /v1/table endpoint of cmd/wfserve) annotate cells with
// their complexity and paper source. The classification comes from the
// kind's capability spec; cells of an unregistered kind return the zero
// Classification (use KindSpecFor for the structured error).
func ClassifyCell(k CellKey) Classification {
	if spec, ok := kindSpecs[k.Kind]; ok {
		return spec.Classify(k)
	}
	return Classification{}
}

// classifyLegacy is the Classify capability shared by the three legacy
// simplified-model kinds: the verbatim Table 1 of the paper, with
// fork-joins classifying exactly as forks (Section 6.3).
func classifyLegacy(k CellKey) Classification {
	bounded := k.Objective.Bounded()
	if k.Kind == workflow.KindPipeline {
		return classifyPipeline(k.PlatformHomogeneous, k.GraphHomogeneous, k.DataParallel, k.Objective, bounded)
	}
	return classifyFork(k.PlatformHomogeneous, k.GraphHomogeneous, k.DataParallel, k.Objective, bounded)
}

func classifyPipeline(platHom, graphHom, dp bool, obj Objective, bounded bool) Classification {
	if platHom {
		switch {
		case obj == MinPeriod:
			return Classification{PolyStraightforward, "Theorem 1"}
		case !dp && obj == MinLatency:
			return Classification{PolyStraightforward, "Theorem 2"}
		case !dp && bounded:
			return Classification{PolyStraightforward, "Corollary 1"}
		case obj == MinLatency:
			return Classification{PolyDP, "Theorem 3"}
		default:
			return Classification{PolyDP, "Theorem 4"}
		}
	}
	// Heterogeneous platform.
	if dp {
		// NP-hard already for homogeneous pipelines (Theorem 5); the
		// heterogeneous case inherits it.
		return Classification{NPHard, "Theorem 5"}
	}
	switch {
	case obj == MinLatency:
		return Classification{PolyStraightforward, "Theorem 6"}
	case graphHom && obj == MinPeriod:
		return Classification{PolyBinarySearchDP, "Theorem 7"}
	case graphHom:
		return Classification{PolyBinarySearchDP, "Theorem 8"}
	default:
		return Classification{NPHard, "Theorem 9"}
	}
}

func classifyFork(platHom, graphHom, dp bool, obj Objective, bounded bool) Classification {
	if platHom {
		switch {
		case obj == MinPeriod:
			return Classification{PolyStraightforward, "Theorem 10"}
		case graphHom:
			return Classification{PolyDP, "Theorem 11"}
		default:
			// Latency (and hence bi-criteria) for heterogeneous forks is
			// NP-hard even on homogeneous platforms.
			return Classification{NPHard, "Theorem 12"}
		}
	}
	// Heterogeneous platform.
	if dp {
		return Classification{NPHard, "Theorem 13"}
	}
	if graphHom {
		return Classification{PolyBinarySearchDP, "Theorem 14"}
	}
	if obj == MinPeriod && !bounded {
		return Classification{NPHard, "Theorem 15"}
	}
	return Classification{NPHard, "Theorems 12/15"}
}
