package core

import (
	"context"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/spdecomp"
	"repliflow/internal/workflow"
)

// This file registers the series-parallel DAG kind: the first client of
// the capability-based kind registry. The solver decomposes the SP graph
// with internal/spdecomp — graphs that collapse onto a legacy shape are
// delegated to the legacy Table 1 cells (so the decomposition is exact by
// construction, and legacy results are reused byte-for-byte); irreducible
// DAGs are solved in the block model, exhaustively within the fork
// limits, heuristically beyond them, and under a budget by a certified
// anytime local search.

func init() {
	registerKind(KindSpec{
		Kind:     workflow.KindSP,
		Name:     workflow.KindSP.String(),
		HasGraph: func(pr Problem) bool { return pr.SP != nil },
		ValidateGraph: func(pr Problem) error {
			return pr.SP.Validate()
		},
		GraphHomogeneous: func(pr Problem) bool { return pr.SP.IsHomogeneous() },
		// The SP block model has no replication or data-parallel mode
		// (DataParallel false), so AllowDataParallel is rejected and only
		// no-dp cells exist.
		Classify:           classifySP,
		ExactlySolvable:    spExactlySolvable,
		Preparable:         spPreparable,
		ParallelWorthwhile: spParallelWorthwhile,
		CandidatePeriods:   spCandidatePeriods,
		Anytime:            solveSPAnytime,
		SeedMix:            spSeedMix,
		AppendFingerprint:  appendSPFingerprint,
	})
	for _, platHom := range []bool{false, true} {
		for _, graphHom := range []bool{false, true} {
			for _, obj := range []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency} {
				register(CellKey{workflow.KindSP, platHom, graphHom, false, obj},
					SolverEntry{MethodExhaustive, true, "SP decomposition", solveSP, prepareSP})
			}
		}
	}
}

// classifySP: mapping a general series-parallel DAG subsumes the
// heterogeneous fork latency problem (Theorem 12), so every cell is
// NP-hard; the decomposer still solves reducible instances exactly
// through the polynomial legacy cells.
func classifySP(CellKey) Classification {
	return Classification{NPHard, "SP decomposition"}
}

// spSeedMix feeds the step weights and the DAG shape into the portfolio
// RNG seed.
func spSeedMix(pr Problem, mix func(float64)) {
	for _, s := range pr.SP.Steps {
		mix(s.Weight)
		mix(float64(len(s.After)))
	}
}

// appendSPFingerprint encodes tag 'S', the step count, and per step the
// weight plus predecessor indices. Step names are deliberately excluded:
// renaming steps never changes the solution.
func appendSPFingerprint(pr Problem, b []byte) []byte {
	g := pr.SP
	b = append(b, 'S')
	b = fpInt(b, len(g.Steps))
	preds := g.Preds()
	for i, s := range g.Steps {
		b = fpFloat(b, s.Weight)
		b = fpInt(b, len(preds[i]))
		for _, u := range preds[i] {
			b = fpInt(b, u)
		}
	}
	return b
}

// spGoal projects the problem objective onto the block-model goal.
func spGoal(pr Problem) spdecomp.Goal {
	switch pr.Objective {
	case MinPeriod:
		return spdecomp.Goal{}
	case MinLatency:
		return spdecomp.Goal{MinimizeLatency: true}
	case LatencyUnderPeriod:
		return spdecomp.Goal{MinimizeLatency: true, PeriodCap: pr.Bound}
	default: // PeriodUnderLatency
		return spdecomp.Goal{LatencyCap: pr.Bound}
	}
}

// spSubProblem builds the legacy problem of an exact reduction,
// inheriting platform, objective and bound (the SP kind has no
// data-parallel model, so the sub-problem stays no-dp).
func spSubProblem(pr Problem, red spdecomp.Reduction) Problem {
	sub := Problem{Platform: pr.Platform, Objective: pr.Objective, Bound: pr.Bound}
	switch red.Kind {
	case workflow.KindPipeline:
		sub.Pipeline = red.Pipeline
	case workflow.KindFork:
		sub.Fork = red.Fork
	default:
		sub.ForkJoin = red.ForkJoin
	}
	return sub
}

// spInLimits reports whether the irreducible block enumeration is within
// the exhaustive limits; SP reuses the fork limits (the block search has
// the same set-partition shape).
func spInLimits(pr Problem, opts Options) bool {
	return len(pr.SP.Steps) <= opts.MaxExhaustiveForkStages &&
		pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
}

// spExactlySolvable: reducible instances are exactly solvable iff the
// reduced legacy instance is; irreducible ones iff the block enumeration
// is within the limits.
func spExactlySolvable(pr Problem, opts Options) bool {
	if red, ok := spdecomp.Reduce(*pr.SP); ok {
		return ExactlySolvable(spSubProblem(pr, red), opts)
	}
	return spInLimits(pr, opts)
}

// spPreparable: reducible instances prepare iff the reduced legacy kind
// does (the prepared sub-solver is what gets shared); irreducible ones
// always prepare — the block enumeration's scratch and memo within the
// limits, the cached heuristic candidate set beyond them.
func spPreparable(pr Problem, opts Options) bool {
	if red, ok := spdecomp.Reduce(*pr.SP); ok {
		sub := spSubProblem(pr, red)
		spec := specOf(sub)
		return spec != nil && spec.Preparable != nil && spec.Preparable(sub, opts)
	}
	return true
}

// spParallelWorthwhile: reducible instances inherit the reduced kind's
// crossover; irreducible ones use the fork thresholds (the block search
// has the same set-partition shape as the fork enumeration).
func spParallelWorthwhile(pr Problem) bool {
	if red, ok := spdecomp.Reduce(*pr.SP); ok {
		return parallelWorthwhile(spSubProblem(pr, red))
	}
	return len(pr.SP.Steps) >= parMinForkItems &&
		pr.Platform.Processors() >= parMinForkProcs
}

// spCandidatePeriods enumerates achievable block loads (subset sums of
// the step weights when the graph is small, canonical-prefix sums plus
// single steps beyond that) expanded over the platform speeds. For
// reduced instances this is a superset of the legacy candidate sets, so
// the Pareto sweep stays exact on them; for large irreducible DAGs the
// coarser set only coarsens the front between points.
func spCandidatePeriods(pr Problem) []float64 {
	g := *pr.SP
	var sums []float64
	if n := len(g.Steps); n <= 12 {
		sums = append(sums, 0)
		for _, s := range g.Steps {
			for _, acc := range append([]float64(nil), sums...) {
				sums = append(sums, acc+s.Weight)
			}
			sums = numeric.DedupSorted(sums)
		}
	} else {
		topo, _ := g.Topo()
		acc := 0.0
		for _, v := range topo {
			sums = append(sums, g.Steps[v].Weight)
			acc += g.Steps[v].Weight
			sums = append(sums, acc)
		}
	}
	var weights []float64
	for _, s := range sums {
		if s > 0 {
			weights = append(weights, s)
		}
	}
	return periodsFromWeights(weights, pr.Platform)
}

// spSolution wraps an irreducible block mapping into a Solution.
func spSolution(blocks []mapping.SPBlock, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	return Solution{
		SPMapping: &mapping.SPMapping{Reduced: workflow.KindSP, Blocks: blocks},
		Cost:      c,
		Method:    method, Exact: exact, Feasible: true, Classification: cl,
	}
}

// wrapSPSolution lifts a legacy sub-solution of an exact reduction into
// an SP solution: the embedded legacy mapping is byte-identical to
// solving the reduced instance directly, and Order records how canonical
// stage positions map back to SP step indices.
func wrapSPSolution(sol Solution, red spdecomp.Reduction, cl Classification) Solution {
	out := sol
	out.Classification = cl
	out.PipelineMapping, out.ForkMapping, out.ForkJoinMapping = nil, nil, nil
	if sol.Feasible {
		out.SPMapping = &mapping.SPMapping{
			Reduced:  red.Kind,
			Order:    append([]int(nil), red.Order...),
			Pipeline: sol.PipelineMapping,
			Fork:     sol.ForkMapping,
			ForkJoin: sol.ForkJoinMapping,
		}
	}
	return out
}

// solveSP is the registered solver of every SP cell.
func solveSP(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	cl := classificationOf(pr)
	g := *pr.SP
	if red, ok := spdecomp.Reduce(g); ok {
		sol, err := SolveContext(ctx, spSubProblem(pr, red), opts)
		if err != nil {
			return Solution{}, err
		}
		return wrapSPSolution(sol, red, cl), nil
	}
	goal := spGoal(pr)
	if spInLimits(pr, opts) {
		pp, err := spdecomp.NewPrepared(g, pr.Platform)
		if err != nil {
			return Solution{}, err
		}
		pp.SetParallelism(searchParallelism(opts, pr))
		blocks, cost, ok, err := pp.Exhaustive(ctx, goal)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return spSolution(blocks, cost, MethodExhaustive, true, cl), nil
	}
	cand, ok := spdecomp.Best(spdecomp.Heuristics(g, pr.Platform), goal)
	if !ok || !goal.Feasible(cand.Cost) {
		return infeasible(MethodHeuristic, false, cl), nil
	}
	return spSolution(cand.Blocks, cand.Cost, MethodHeuristic, false, cl), nil
}

// solveSPAnytime is the Anytime capability of the SP kind. Exact
// reductions delegate the budget to the sub-problem's own solver (the
// legacy portfolio certifies its gap; polynomial sub-cells ignore the
// budget and return exact, gap 0). Irreducible DAGs run the seeded local
// search of spdecomp.Budgeted and certify the incumbent against the
// spdecomp.Bounds lower bounds.
func solveSPAnytime(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	cl := classificationOf(pr)
	g := *pr.SP
	if red, ok := spdecomp.Reduce(g); ok {
		sol, err := SolveContext(ctx, spSubProblem(pr, red), opts)
		if err != nil {
			return Solution{}, err
		}
		return wrapSPSolution(sol, red, cl), nil
	}
	goal := spGoal(pr)
	// Within the exhaustive limits, try to certify the true optimum inside
	// the budget — the SP analogue of the legacy portfolio's exact member.
	// A budget that expires mid-enumeration falls through to the budgeted
	// local search below.
	if spInLimits(pr, opts) {
		bctx, cancel := anytimeContext(ctx, opts.AnytimeBudget)
		blocks, cost, feasible, err := spdecomp.Exhaustive(bctx, g, pr.Platform, goal)
		cancel()
		if err == nil {
			var sol Solution
			if feasible {
				sol = spSolution(blocks, cost, MethodAnytime, true, cl)
				sol.LowerBound = cost.Period
				if goal.MinimizeLatency {
					sol.LowerBound = cost.Latency
				}
			} else {
				sol = infeasible(MethodAnytime, true, cl)
			}
			sol.Anytime = true
			sol.Iterations = 1
			return sol, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return Solution{}, cerr
		}
	}
	periodLB, latencyLB := spdecomp.Bounds(g, pr.Platform)
	blocks, cost, iters, feasible, err := spdecomp.Budgeted(
		ctx, g, pr.Platform, goal, uint64(anytimeSeedBase(pr)), opts.AnytimeBudget)
	if err != nil {
		return Solution{}, err
	}
	lb, val := periodLB, cost.Period
	if goal.MinimizeLatency {
		lb, val = latencyLB, cost.Latency
	}
	sol := Solution{
		Cost:   cost,
		Method: MethodAnytime, Feasible: feasible, Classification: cl,
		Anytime: true, LowerBound: lb, Iterations: uint64(iters),
	}
	if feasible {
		sol.SPMapping = &mapping.SPMapping{Reduced: workflow.KindSP, Blocks: blocks}
		sol.Exact = numeric.LessEq(val, lb)
		if !sol.Exact && lb > 0 {
			sol.Gap = val/lb - 1
		}
	}
	return sol, nil
}

// prepareSP is the Prepare capability of the SP cells: when the graph
// reduces exactly and the reduced cell advertises preparation, the
// sub-problem's prepared solver is shared across the objective family and
// each solve is wrapped back into SP form — byte-identical to solveSP.
// Irreducible DAGs share a spdecomp.Prepared: the cached decomposition
// state (topological order, evaluation scratch, certified bounds), the
// enumeration buffers and per-goal memo within the exhaustive limits,
// and the goal-independent heuristic candidate set beyond them.
func prepareSP(pr Problem, opts Options) *PreparedCell {
	red, ok := spdecomp.Reduce(*pr.SP)
	if !ok {
		return prepareSPIrreducible(pr, opts)
	}
	sub := spSubProblem(pr, red)
	e, ok := registry[CellKeyOf(sub)]
	if !ok || e.Prepare == nil {
		return nil
	}
	pc := e.Prepare(sub, opts)
	if pc == nil {
		return nil
	}
	solve := func(ctx context.Context, pr2 Problem) (Solution, error) {
		sub2 := sub
		sub2.Objective, sub2.Bound = pr2.Objective, pr2.Bound
		var (
			sol Solution
			err error
		)
		// Route through the shared prepared cell only for objectives whose
		// reduced cell registers the prepared capability — the same
		// per-objective gate Prepare applies to direct legacy problems.
		// Objectives answered by a polynomial cell (e.g. closed-form
		// min-latency) dispatch through SolveContext, like solveSP, so the
		// solution metadata stays byte-identical to the unprepared path.
		if e2, ok2 := registry[CellKeyOf(sub2)]; ok2 && e2.Prepare != nil {
			sol, err = pc.Solve(ctx, sub2)
		} else {
			sol, err = SolveContext(ctx, sub2, opts)
		}
		if err != nil {
			return Solution{}, err
		}
		return wrapSPSolution(sol, red, classificationOf(pr2)), nil
	}
	return &PreparedCell{Solve: solve, SetParallelism: pc.SetParallelism}
}

// prepareSPIrreducible shares one spdecomp.Prepared across the objective
// family of an irreducible SP instance, byte-identical to solveSP: the
// in-limit branch runs the (optionally partitioned) exhaustive block
// search with persistent scratch and a per-goal memo, the oversized
// branch reuses the goal-independent heuristic candidate set.
func prepareSPIrreducible(pr Problem, opts Options) *PreparedCell {
	pp, err := spdecomp.NewPrepared(*pr.SP, pr.Platform)
	if err != nil {
		return nil
	}
	pp.SetParallelism(searchParallelism(opts, pr))
	inLimits := spInLimits(pr, opts)
	solve := func(ctx context.Context, pr2 Problem) (Solution, error) {
		cl := classificationOf(pr2)
		goal := spGoal(pr2)
		if inLimits {
			blocks, cost, ok, err := pp.Exhaustive(ctx, goal)
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodExhaustive, true, cl), nil
			}
			return spSolution(blocks, cost, MethodExhaustive, true, cl), nil
		}
		cand, ok := pp.BestHeuristic(goal)
		if !ok || !goal.Feasible(cand.Cost) {
			return infeasible(MethodHeuristic, false, cl), nil
		}
		return spSolution(cand.Blocks, cand.Cost, MethodHeuristic, false, cl), nil
	}
	return &PreparedCell{Solve: solve, SetParallelism: pp.SetParallelism}
}
