// Package core surfaces the complete result set of Benoit & Robert
// (RR-6308) behind one API: it classifies any problem instance into its
// Table 1 cell (polynomial or NP-hard) and solves it with the matching
// algorithm — the paper's polynomial algorithms for the tractable
// cells, and exact exponential search or polynomial heuristics for the
// NP-hard ones — or, under a budget, the anytime portfolio of
// internal/anytime.
//
// # Dispatch
//
// Every instance reduces to a CellKey (graph kind, platform and graph
// homogeneity, mapping model, objective), and an init-time registry
// maps every reachable key to a SolverEntry: the algorithm family, its
// exactness, the paper result backing the cell, and the solver
// function. Solve is CellKeyOf followed by one registry lookup; a
// completeness test guarantees the registry is total. LookupSolver and
// ClassifyCell expose the registry read-only to harnesses (wftable, the
// /v1/table endpoint of cmd/wfserve).
//
// # Cancellation
//
// SolveContext threads its context into every registered solver.
// Polynomial solvers complete fast enough that they only check the
// context on entry; the exhaustive searches on NP-hard cells poll it at
// loop checkpoints and return ctx.Err() promptly when cancelled. Solve
// is SolveContext with context.Background().
//
// # Anytime solving
//
// Options.AnytimeBudget switches every NP-hard cell to a second,
// parallel registry of portfolio solvers (LookupAnytimeSolver):
// heuristic seeds, simulated-annealing members and — within the
// exhaustive limits — the exact solver race until the budget or the
// caller's deadline expires, and the best incumbent is returned with a
// certified optimality gap (Solution.Gap, Solution.LowerBound) instead
// of an unbounded search or an uncertified heuristic answer.
//
// # Errors
//
// Errors carry a machine-readable ErrKind (invalid instance, missing
// solver) recoverable with ErrKindOf, so network services can map
// failures to protocol codes without parsing messages.
//
// The instance wire format consumed by the CLIs and cmd/wfserve is
// documented in docs/wire-format.md and implemented by
// internal/instance.
package core
