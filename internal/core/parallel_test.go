package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// TestParallelSolveIdentity is the core-level byte-identity corpus:
// Solve with any Parallelism setting — explicit worker counts, auto mode
// above and below the crossover — must return exactly the serial
// solution, on every graph kind and objective (polynomial cells ignore
// the option; NP-hard cells run the partitioned search).
func TestParallelSolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 40; trial++ {
		pr := randomHardishProblem(rng)
		pr.Objective = Objective(rng.Intn(4))
		if pr.Objective.Bounded() {
			pr.Bound = float64(1 + rng.Intn(20)/2)
		}
		want, err := Solve(pr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{0, 1, 2, 4, -1, -3} {
			opts := Options{Parallelism: par}
			got, err := Solve(pr, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d par=%d: parallel solve diverges\n got %+v\nwant %+v\nfor %+v",
					trial, par, got, want, pr)
			}
		}
	}
}

// TestParallelPreparedIdentity: a prepared solver answering solves at
// alternating parallelism — SetParallelism switches between solves, the
// bound memos mix entries computed at different counts — must stay
// byte-identical to serial SolveContext throughout.
func TestParallelPreparedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	prepared := 0
	for trial := 0; trial < 40; trial++ {
		pr := randomHardishProblem(rng)
		ps, ok := Prepare(pr, Options{Parallelism: 3})
		if !ok {
			continue
		}
		prepared++
		type solveCase struct {
			obj   Objective
			bound float64
			par   int
		}
		cases := []solveCase{
			{MinPeriod, 0, 3},
			{MinLatency, 0, 0},
			{LatencyUnderPeriod, float64(1+rng.Intn(6)) / 2, 2},
			{PeriodUnderLatency, float64(1+rng.Intn(8)) / 2, 4},
		}
		rng.Shuffle(len(cases), func(i, j int) { cases[i], cases[j] = cases[j], cases[i] })
		// Repeats answer from memos populated at a different count.
		cases = append(cases, cases...)
		for i, c := range cases {
			if i >= len(cases)/2 {
				c.par = 1 // replay the same solves serially
			}
			ps.SetParallelism(c.par)
			got, err := ps.Solve(ctx, c.obj, c.bound)
			if err != nil {
				t.Fatal(err)
			}
			sub := pr
			sub.Objective = c.obj
			sub.Bound = c.bound
			want, err := SolveContext(ctx, sub, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v bound=%g par=%d: prepared parallel solve diverges\n got %+v\nwant %+v",
					trial, c.obj, c.bound, c.par, got, want)
			}
		}
	}
	if prepared < 8 {
		t.Fatalf("only %d/40 trials exercised the prepared path; corpus too weak", prepared)
	}
}
