package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestRegistryCompleteness checks the registry is total: every dispatch
// key Classify can emit — the full cross product of graph kinds,
// homogeneity axes, mapping models and objectives — resolves to a
// registered solver whose metadata agrees with the classification.
func TestRegistryCompleteness(t *testing.T) {
	keys := AllCellKeys()
	want := 0
	for _, spec := range KindSpecs() {
		cells := 2 * 2 * 4 // platform axis x graph axis x objectives
		if spec.DataParallel {
			cells *= 2
		}
		want += cells
	}
	if len(keys) != want {
		t.Fatalf("AllCellKeys: %d keys, want %d", len(keys), want)
	}
	for _, key := range keys {
		e, ok := LookupSolver(key)
		if !ok {
			t.Errorf("cell %v: no solver registered", key)
			continue
		}
		cl := classifyKey(key)
		if e.Source != cl.Source {
			t.Errorf("cell %v: solver source %q, classification source %q", key, e.Source, cl.Source)
		}
		if cl.Complexity.Polynomial() && e.Method == MethodExhaustive {
			t.Errorf("cell %v: polynomial cell registered with exhaustive solver", key)
		}
		if !cl.Complexity.Polynomial() && e.Method != MethodExhaustive {
			t.Errorf("cell %v: NP-hard cell registered with %v solver", key, e.Method)
		}
		if !e.Exact {
			t.Errorf("cell %v: primary method not exact", key)
		}
	}
	if got := len(RegisteredCells()); got != len(keys) {
		t.Errorf("registry holds %d cells, want %d", got, len(keys))
	}
}

// classifyKey reproduces Classify for a bare dispatch key: the legacy
// kinds through the Table 1 decision trees preserved verbatim (fork-joins
// classify as forks, Section 6.3), the registry-extension kinds through
// their registered Classify capability.
func classifyKey(k CellKey) Classification {
	switch k.Kind {
	case workflow.KindPipeline:
		return classifyPipeline(k.PlatformHomogeneous, k.GraphHomogeneous, k.DataParallel, k.Objective, k.Objective.Bounded())
	case workflow.KindFork, workflow.KindForkJoin:
		return classifyFork(k.PlatformHomogeneous, k.GraphHomogeneous, k.DataParallel, k.Objective, k.Objective.Bounded())
	default:
		return ClassifyCell(k)
	}
}

// isLegacyKind reports whether the kind existed in the seed's three-value
// enum — the scope of the legacy dispatch oracle.
func isLegacyKind(k workflow.Kind) bool {
	return k == workflow.KindPipeline || k == workflow.KindFork || k == workflow.KindForkJoin
}

// randomProblemForCell builds a random instance matching the given
// dispatch axes. When oversized is true the instance exceeds the default
// exhaustive limits, forcing the heuristic path on NP-hard cells.
func randomProblemForCell(rng *rand.Rand, key CellKey, oversized bool) Problem {
	pr := Problem{AllowDataParallel: key.DataParallel, Objective: key.Objective}

	procs := 2 + rng.Intn(3)
	if oversized {
		procs = DefaultOptions().MaxExhaustiveForkProcs + 1 + rng.Intn(2)
		if key.Kind == workflow.KindPipeline {
			procs = DefaultOptions().MaxExhaustivePipelineProcs + 1
		}
	}
	if key.PlatformHomogeneous {
		pr.Platform = platform.Homogeneous(procs, float64(1+rng.Intn(4)))
	} else {
		pr.Platform = heterogeneousPlatform(rng, procs)
	}

	stages := 2 + rng.Intn(3)
	switch key.Kind {
	case workflow.KindPipeline:
		var g workflow.Pipeline
		if key.GraphHomogeneous {
			g = workflow.HomogeneousPipeline(stages, float64(1+rng.Intn(9)))
		} else {
			g = heterogeneousPipeline(rng, stages)
		}
		pr.Pipeline = &g
	case workflow.KindFork:
		var g workflow.Fork
		root := float64(1 + rng.Intn(9))
		if key.GraphHomogeneous {
			g = workflow.HomogeneousFork(root, stages, float64(1+rng.Intn(9)))
		} else {
			g = workflow.NewFork(root, heterogeneousWeights(rng, stages)...)
		}
		pr.Fork = &g
	default:
		var g workflow.ForkJoin
		root, join := float64(1+rng.Intn(9)), float64(1+rng.Intn(9))
		if key.GraphHomogeneous {
			g = workflow.HomogeneousForkJoin(root, join, stages, float64(1+rng.Intn(9)))
		} else {
			g = workflow.NewForkJoin(root, join, heterogeneousWeights(rng, stages)...)
		}
		pr.ForkJoin = &g
	}

	if key.Objective.Bounded() {
		// Spread bounds from easily feasible to likely infeasible.
		pr.Bound = float64(1+rng.Intn(30)) / 2
	}
	return pr
}

// heterogeneousPlatform returns a platform with at least two distinct
// speeds.
func heterogeneousPlatform(rng *rand.Rand, procs int) platform.Platform {
	speeds := make([]float64, procs)
	speeds[0] = 1
	speeds[1] = 2 + float64(rng.Intn(3))
	for i := 2; i < procs; i++ {
		speeds[i] = float64(1 + rng.Intn(5))
	}
	return platform.New(speeds...)
}

// heterogeneousWeights returns stage weights with at least two distinct
// values.
func heterogeneousWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	w[0] = 1
	if n > 1 {
		w[1] = 2 + float64(rng.Intn(4))
	}
	for i := 2; i < n; i++ {
		w[i] = float64(1 + rng.Intn(9))
	}
	return w
}

func heterogeneousPipeline(rng *rand.Rand, n int) workflow.Pipeline {
	return workflow.NewPipeline(heterogeneousWeights(rng, n)...)
}

// TestRegistryMatchesSeedDispatch is the regression gate of the refactor:
// on a randomized corpus covering every Table 1 dispatch cell (and, for
// NP-hard cells, both the exhaustive and the oversized heuristic paths),
// the registry-driven Solve must return byte-identical solutions —
// mapping, cost, method, exactness, feasibility and classification — to
// the seed's if-chain dispatch preserved in legacy_seed_test.go.
func TestRegistryMatchesSeedDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for _, key := range AllCellKeys() {
		if !isLegacyKind(key.Kind) {
			continue // the seed dispatch never handled these kinds
		}
		for trial := 0; trial < trials; trial++ {
			pr := randomProblemForCell(rng, key, false)
			checkAgainstSeed(t, pr, key)
		}
	}
	// Oversized instances exercise the heuristic fallback of the hard
	// cells; the polynomial cells just solve a bigger instance.
	for _, key := range AllCellKeys() {
		if !isLegacyKind(key.Kind) {
			continue
		}
		// Skip multi-stage oversized pipelines: 2^11 bitmask states per
		// stage are still fine, but keep the corpus fast.
		pr := randomProblemForCell(rng, key, true)
		checkAgainstSeed(t, pr, key)
	}
}

func checkAgainstSeed(t *testing.T, pr Problem, key CellKey) {
	t.Helper()
	want, wantErr := legacySolve(pr, Options{})
	got, gotErr := Solve(pr, Options{})
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("cell %v: seed err %v, registry err %v", key, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("cell %v: registry diverges from seed dispatch\nproblem: %+v\nseed:     %v\nregistry: %v",
			key, pr, want, got)
	}
	// SolveContext with a background context must match Solve exactly.
	ctxSol, err := SolveContext(context.Background(), pr, Options{})
	if err != nil {
		t.Fatalf("cell %v: SolveContext: %v", key, err)
	}
	if !reflect.DeepEqual(got, ctxSol) {
		t.Errorf("cell %v: SolveContext diverges from Solve", key)
	}
}

// TestSolveContextCancellation checks the acceptance property: cancelling
// the context mid-exhaustive-search returns context.Canceled promptly
// instead of running the search to completion.
func TestSolveContextCancellation(t *testing.T) {
	// An NP-hard pipeline cell with the exhaustive limit raised to 14
	// heterogeneous processors: a >500ms bitmask-DP search, two orders of
	// magnitude beyond the 10ms cancellation deadline.
	p := workflow.NewPipeline(14, 4, 2, 4, 7, 5, 3, 9)
	pl := platform.New(5, 4, 3, 3, 2, 2, 1, 1, 4, 2, 3, 5, 2, 1)
	pr := Problem{Pipeline: &p, Platform: pl, AllowDataParallel: true, Objective: MinPeriod}
	opts := Options{MaxExhaustivePipelineProcs: 14}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SolveContext(ctx, pr, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled solve returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}

	// A context cancelled before the call returns immediately.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := SolveContext(pre, pr, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled solve returned %v, want context.Canceled", err)
	}

	// The same cell solves fine (if slowly) with a live context on a
	// smaller platform, proving cancellation is the only failure mode.
	small := Problem{Pipeline: &p, Platform: platform.New(2, 1), AllowDataParallel: true, Objective: MinPeriod}
	if _, err := SolveContext(context.Background(), small, Options{}); err != nil {
		t.Fatalf("uncancelled solve failed: %v", err)
	}
}

// TestSolveContextCancellationFork covers the set-partition search too.
func TestSolveContextCancellationFork(t *testing.T) {
	f := workflow.NewFork(3, 1, 2, 4, 5, 7)
	pl := platform.New(3, 2, 1, 4, 2)
	pr := Problem{Fork: &f, Platform: pl, AllowDataParallel: true, Objective: MinLatency}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, pr, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fork solve returned %v, want context.Canceled", err)
	}
}
