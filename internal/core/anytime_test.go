package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestAnytimeRegistryCoversNPHardCells: every NP-hard dispatch cell of a
// kind advertising the Anytime capability has a portfolio solver, and no
// polynomial cell — or cell of a kind without the capability, like the
// communication-aware variants — does.
func TestAnytimeRegistryCoversNPHardCells(t *testing.T) {
	for _, key := range AllCellKeys() {
		cl := ClassifyCell(key)
		spec, err := KindSpecFor(key.Kind)
		if err != nil {
			t.Fatalf("cell %v: %v", key, err)
		}
		_, hasAnytime := LookupAnytimeSolver(key)
		if want := !cl.Complexity.Polynomial() && spec.Anytime != nil; hasAnytime != want {
			t.Errorf("cell %v (%v): anytime solver registered = %v, want %v", key, cl.Complexity, hasAnytime, want)
		}
	}
}

// randomHardProblem builds a random NP-hard instance of the given kind.
// Oversized instances exceed the default exhaustive limits, small ones
// stay within them.
func randomHardProblem(rng *rand.Rand, kind workflow.Kind, oversized bool, obj Objective) Problem {
	pr := Problem{Objective: obj, AllowDataParallel: true}
	switch kind {
	case workflow.KindPipeline:
		n, p := 3+rng.Intn(3), 3+rng.Intn(2)
		if oversized {
			n, p = 10+rng.Intn(5), 12+rng.Intn(4)
		}
		pipe := workflow.RandomPipeline(rng, n, 9)
		pr.Pipeline = &pipe
		pr.Platform = platform.Random(rng, p, 5)
	case workflow.KindFork:
		n, p := 1+rng.Intn(3), 2+rng.Intn(2)
		if oversized {
			n, p = 8+rng.Intn(5), 8+rng.Intn(4)
		}
		f := workflow.RandomFork(rng, n, 9)
		pr.Fork = &f
		pr.Platform = platform.Random(rng, p, 5)
	default:
		n, p := 1+rng.Intn(2), 2+rng.Intn(2)
		if oversized {
			n, p = 8+rng.Intn(5), 8+rng.Intn(4)
		}
		fj := workflow.RandomForkJoin(rng, n, 9)
		pr.ForkJoin = &fj
		pr.Platform = platform.Random(rng, p, 5)
	}
	if obj.Bounded() {
		// A generous bound so most instances stay feasible.
		pr.Bound = 1000
	}
	return pr
}

var hardKinds = []workflow.Kind{workflow.KindPipeline, workflow.KindFork, workflow.KindForkJoin}

// TestAnytimeNeverWorseThanHeuristicCorpus is the acceptance corpus: on
// randomized oversized NP-hard instances, the budgeted portfolio never
// returns a worse objective than the unbudgeted heuristic path, and
// every result carries a non-negative gap.
func TestAnytimeNeverWorseThanHeuristicCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	objs := []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency}
	for trial := 0; trial < 12; trial++ {
		pr := randomHardProblem(rng, hardKinds[trial%3], true, objs[trial%4])
		heur, err := Solve(pr, Options{})
		if err != nil {
			t.Fatalf("trial %d: heuristic solve: %v", trial, err)
		}
		if heur.Method != MethodHeuristic {
			t.Fatalf("trial %d: oversized instance solved by %v, want heuristic", trial, heur.Method)
		}
		any, err := Solve(pr, Options{AnytimeBudget: 60 * time.Millisecond})
		if err != nil {
			t.Fatalf("trial %d: anytime solve: %v", trial, err)
		}
		if !any.Anytime || any.Method != MethodAnytime {
			t.Fatalf("trial %d: anytime=%v method=%v, want anytime portfolio", trial, any.Anytime, any.Method)
		}
		if any.Gap < 0 {
			t.Errorf("trial %d: negative gap %g", trial, any.Gap)
		}
		if any.Iterations == 0 {
			t.Errorf("trial %d: portfolio reported zero iterations", trial)
		}
		if !heur.Feasible {
			continue // nothing to compare
		}
		if !any.Feasible {
			t.Errorf("trial %d: portfolio infeasible where the heuristic found %v", trial, heur.Cost)
			continue
		}
		ha := objectiveValue(heur.Cost, pr.Objective)
		aa := objectiveValue(any.Cost, pr.Objective)
		if aa > ha*(1+1e-9) {
			t.Errorf("trial %d (%v): anytime objective %g worse than heuristic %g", trial, CellKeyOf(pr), aa, ha)
		}
	}
}

// TestAnytimeGapZeroMatchesExhaustive: on small NP-hard instances the
// exact portfolio member finishes within the budget, so the result is
// certified (gap 0, Exact) at exactly the unbudgeted exhaustive
// optimum.
func TestAnytimeGapZeroMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	objs := []Objective{MinPeriod, MinLatency}
	for trial := 0; trial < 9; trial++ {
		pr := randomHardProblem(rng, hardKinds[trial%3], false, objs[trial%2])
		exact, err := Solve(pr, Options{})
		if err != nil {
			t.Fatalf("trial %d: exhaustive solve: %v", trial, err)
		}
		if exact.Method != MethodExhaustive {
			t.Fatalf("trial %d: small instance solved by %v, want exhaustive", trial, exact.Method)
		}
		any, err := Solve(pr, Options{AnytimeBudget: 5 * time.Second})
		if err != nil {
			t.Fatalf("trial %d: anytime solve: %v", trial, err)
		}
		if !any.Anytime || !any.Exact {
			t.Fatalf("trial %d: want certified anytime optimum, got anytime=%v exact=%v", trial, any.Anytime, any.Exact)
		}
		if any.Gap != 0 {
			t.Errorf("trial %d: certified optimum has gap %g", trial, any.Gap)
		}
		av := objectiveValue(any.Cost, pr.Objective)
		ev := objectiveValue(exact.Cost, pr.Objective)
		if av > ev*(1+1e-9) || ev > av*(1+1e-9) {
			t.Errorf("trial %d (%v): anytime objective %g != exhaustive optimum %g", trial, CellKeyOf(pr), av, ev)
		}
	}
}

// TestAnytimeBudgetBoundsLatency: the wall clock of a budgeted solve on
// an oversized instance stays near the budget.
func TestAnytimeBudgetBoundsLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	pr := randomHardProblem(rng, workflow.KindPipeline, true, MinPeriod)
	start := time.Now()
	sol, err := Solve(pr, Options{AnytimeBudget: 50 * time.Millisecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("unbounded objective must always yield a feasible mapping")
	}
	// Generous slack for loaded CI machines; the point is "not minutes".
	if elapsed > 5*time.Second {
		t.Errorf("budgeted solve took %v, want roughly the 50ms budget", elapsed)
	}
}

// TestAnytimePolynomialCellsIgnoreBudget: a budget must not reroute a
// polynomial cell — the exact algorithm still answers.
func TestAnytimePolynomialCellsIgnoreBudget(t *testing.T) {
	pipe := workflow.NewPipeline(3, 5, 2)
	pr := Problem{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), Objective: MinPeriod}
	plain, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Solve(pr, Options{AnytimeBudget: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Anytime || budgeted.Method != plain.Method || budgeted.Cost != plain.Cost {
		t.Errorf("polynomial cell changed under budget: %+v vs %+v", budgeted, plain)
	}
}

// TestAnytimeCancelledContext: a dead caller context aborts the solve
// with its error rather than returning a half-baked incumbent.
func TestAnytimeCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	pr := randomHardProblem(rng, workflow.KindFork, true, MinPeriod)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, pr, Options{AnytimeBudget: 50 * time.Millisecond}); err == nil {
		t.Fatal("cancelled context produced a solution")
	}
}

// TestAnytimeInfeasibleBoundVerdict: an unreachable bound yields an
// infeasible verdict, not an error and not a bound-violating mapping.
func TestAnytimeInfeasibleBoundVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	pr := randomHardProblem(rng, workflow.KindPipeline, true, LatencyUnderPeriod)
	pr.Bound = 1e-9
	sol, err := Solve(pr, Options{AnytimeBudget: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Errorf("period bound 1e-9 reported feasible with cost %v", sol.Cost)
	}
	if !sol.Anytime {
		t.Error("infeasible verdict not marked anytime")
	}
}
