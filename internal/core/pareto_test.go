package core

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestParetoFrontSection2Hom(t *testing.T) {
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.Homogeneous(3, 1)
	front, err := ParetoFront(Problem{Pipeline: &p, Platform: pl, AllowDataParallel: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !FrontIsMonotone(front) {
		t.Fatalf("front not monotone: %v", frontCosts(front))
	}
	if len(front) < 2 {
		t.Fatalf("front too small: %v", frontCosts(front))
	}
	if !numeric.Eq(front[0].Cost.Period, 8) {
		t.Errorf("front[0].Period = %v, want 8", front[0].Cost.Period)
	}
	last := front[len(front)-1]
	if !numeric.Eq(last.Cost.Latency, 17) {
		t.Errorf("front[last].Latency = %v, want 17", last.Cost.Latency)
	}
}

func TestParetoFrontMatchesExhaustivePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := rng.Intn(2) == 0
		front, err := ParetoFront(Problem{Pipeline: &p, Platform: pl, AllowDataParallel: dp}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref := exhaustive.PipelinePareto(p, pl, dp)
		if len(front) != len(ref) {
			t.Fatalf("trial %d: front size %d != exhaustive %d\nfront: %v\nref: %v",
				trial, len(front), len(ref), frontCosts(front), refCosts(ref))
		}
		for i := range ref {
			if !numeric.Eq(front[i].Cost.Period, ref[i].Cost.Period) ||
				!numeric.Eq(front[i].Cost.Latency, ref[i].Cost.Latency) {
				t.Fatalf("trial %d: point %d = %v, exhaustive %v", trial, i, front[i].Cost, ref[i].Cost)
			}
		}
	}
}

func TestParetoFrontFork(t *testing.T) {
	f := workflow.NewFork(2, 3, 5)
	pl := platform.New(2, 1, 1)
	front, err := ParetoFront(Problem{Fork: &f, Platform: pl, AllowDataParallel: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !FrontIsMonotone(front) {
		t.Fatalf("fork front not monotone: %v", frontCosts(front))
	}
	ref := exhaustive.ForkPareto(f, pl, true)
	if len(front) != len(ref) {
		t.Fatalf("fork front size %d != exhaustive %d (%v vs %v)",
			len(front), len(ref), frontCosts(front), forkRefCosts(ref))
	}
	for i := range ref {
		if !numeric.Eq(front[i].Cost.Period, ref[i].Cost.Period) ||
			!numeric.Eq(front[i].Cost.Latency, ref[i].Cost.Latency) {
			t.Fatalf("fork point %d = %v, exhaustive %v", i, front[i].Cost, ref[i].Cost)
		}
	}
}

func TestParetoFrontForkJoin(t *testing.T) {
	fj := workflow.HomogeneousForkJoin(2, 3, 2, 4)
	pl := platform.New(2, 1)
	front, err := ParetoFront(Problem{ForkJoin: &fj, Platform: pl}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 || !FrontIsMonotone(front) {
		t.Fatalf("fork-join front invalid: %v", frontCosts(front))
	}
	// Endpoints bracket the mono-criterion optima.
	bestP, _ := Solve(Problem{ForkJoin: &fj, Platform: pl, Objective: MinPeriod}, Options{})
	bestL, _ := Solve(Problem{ForkJoin: &fj, Platform: pl, Objective: MinLatency}, Options{})
	if !numeric.Eq(front[0].Cost.Period, bestP.Cost.Period) {
		t.Errorf("front[0].Period = %v, want %v", front[0].Cost.Period, bestP.Cost.Period)
	}
	if !numeric.Eq(front[len(front)-1].Cost.Latency, bestL.Cost.Latency) {
		t.Errorf("front[last].Latency = %v, want %v", front[len(front)-1].Cost.Latency, bestL.Cost.Latency)
	}
}

func TestParetoFrontRejectsInvalid(t *testing.T) {
	if _, err := ParetoFront(Problem{}, Options{}); err == nil {
		t.Error("graphless problem accepted")
	}
}

func frontCosts(front []Solution) []Cost2 {
	out := make([]Cost2, len(front))
	for i, s := range front {
		out[i] = Cost2{s.Cost.Period, s.Cost.Latency}
	}
	return out
}

func refCosts(ref []exhaustive.PipelineResult) []Cost2 {
	out := make([]Cost2, len(ref))
	for i, s := range ref {
		out[i] = Cost2{s.Cost.Period, s.Cost.Latency}
	}
	return out
}

func forkRefCosts(ref []exhaustive.ForkResult) []Cost2 {
	out := make([]Cost2, len(ref))
	for i, s := range ref {
		out[i] = Cost2{s.Cost.Period, s.Cost.Latency}
	}
	return out
}

// Cost2 is a compact (period, latency) pair for test failure messages.
type Cost2 struct{ P, L float64 }
