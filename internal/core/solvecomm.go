package core

import (
	"context"

	"repliflow/internal/fullmodel"
	"repliflow/internal/mapping"
	"repliflow/internal/workflow"
)

// This file registers the communication-aware kinds of the full one-port
// model (Section 3 of the paper, internal/fullmodel): the comm-pipeline
// and comm-fork variants price every data transfer against explicit link
// bandwidths instead of assuming free communication. Both kinds require
// Problem.Bandwidth and override the platform-homogeneity axis with the
// stricter fully-homogeneous test (uniform speeds AND uniform links):
// the Subhlok-Vondran style dynamic programs of the hom-platform
// comm-pipeline cells are only exact under uniform bandwidths.

// commPlatform binds the instance's bandwidth description to its
// processor speeds, yielding the fullmodel evaluation platform. The
// binding goes through the process-wide fullmodel.TableFor cache, so
// repeated solves of one (speeds, bandwidth) pair — every Pareto sweep —
// pay the uniform-bandwidth matrix expansion once.
func commPlatform(pr Problem) fullmodel.Platform {
	return commTable(pr).Plat
}

// commTable returns the shared bound-platform table of the instance.
func commTable(pr Problem) *fullmodel.PlatTable {
	return fullmodel.TableFor(pr.Platform.Speeds, *pr.Bandwidth)
}

// commGoal projects the problem objective onto the fullmodel goal.
func commGoal(pr Problem) fullmodel.Goal {
	switch pr.Objective {
	case MinPeriod:
		return fullmodel.Goal{MinimizePeriod: true}
	case MinLatency:
		return fullmodel.Goal{}
	case LatencyUnderPeriod:
		return fullmodel.Goal{PeriodCap: pr.Bound}
	default: // PeriodUnderLatency
		return fullmodel.Goal{MinimizePeriod: true, LatencyCap: pr.Bound}
	}
}

// commCost converts a fullmodel cost into the solution cost type.
func commCost(c fullmodel.Cost) mapping.Cost {
	return mapping.Cost{Period: c.Period, Latency: c.Latency}
}

// fpBandwidth appends the canonical bandwidth encoding: a flag byte
// distinguishing the uniform form from full tables, then the values.
func fpBandwidth(b []byte, bw *fullmodel.Bandwidth) []byte {
	if bw.Uniform != 0 {
		return fpFloat(append(b, 0), bw.Uniform)
	}
	b = append(b, 1)
	for _, row := range bw.Links {
		b = fpFloats(b, row)
	}
	b = fpFloats(b, bw.In)
	return fpFloats(b, bw.Out)
}

func init() {
	bools := []bool{false, true}
	objs := []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency}

	registerKind(KindSpec{
		Kind:     workflow.KindCommPipeline,
		Name:     workflow.KindCommPipeline.String(),
		HasGraph: func(pr Problem) bool { return pr.CommPipeline != nil },
		ValidateGraph: func(pr Problem) error {
			return pr.CommPipeline.Validate()
		},
		GraphHomogeneous:    func(pr Problem) bool { return pr.CommPipeline.IsHomogeneous() },
		PlatformHomogeneous: func(pr Problem) bool { return commPlatform(pr).IsFullyHomogeneous() },
		NeedsBandwidth:      true,
		Classify:            classifyCommPipeline,
		ExactlySolvable:     commPipeInLimits,
		// Every comm-pipeline cell prepares: the hom-platform DP reuses its
		// tables and candidate set, the het-platform exhaustive its scratch
		// and memo, the oversized path its heuristic candidate evaluations.
		Preparable: func(Problem, Options) bool { return true },
		// Only the het-platform exhaustive scan has a partitioned path; the
		// hom-platform DP is polynomial and stays serial.
		ParallelWorthwhile: func(pr Problem) bool {
			return !commPlatform(pr).IsFullyHomogeneous() &&
				pr.CommPipeline.Stages() >= parMinForkItems &&
				pr.Platform.Processors() >= parMinForkProcs
		},
		CandidatePeriods: func(pr Problem) []float64 {
			return fullmodel.PeriodCandidates(*pr.CommPipeline, commPlatform(pr))
		},
		SeedMix: func(pr Problem, mix func(float64)) {
			for _, w := range pr.CommPipeline.Weights {
				mix(w)
			}
			for _, d := range pr.CommPipeline.Data {
				mix(d)
			}
		},
		AppendFingerprint: func(pr Problem, b []byte) []byte {
			b = fpFloats(append(b, 'C'), pr.CommPipeline.Weights)
			b = fpFloats(b, pr.CommPipeline.Data)
			return fpBandwidth(b, pr.Bandwidth)
		},
	})
	registerKind(KindSpec{
		Kind:     workflow.KindCommFork,
		Name:     workflow.KindCommFork.String(),
		HasGraph: func(pr Problem) bool { return pr.CommFork != nil },
		ValidateGraph: func(pr Problem) error {
			return pr.CommFork.Validate()
		},
		GraphHomogeneous:    func(pr Problem) bool { return pr.CommFork.IsHomogeneous() },
		PlatformHomogeneous: func(pr Problem) bool { return commPlatform(pr).IsFullyHomogeneous() },
		NeedsBandwidth:      true,
		Classify: func(CellKey) Classification {
			return Classification{NPHard, "Section 3.3 (one-port fork)"}
		},
		ExactlySolvable: commForkInLimits,
		// Every comm-fork cell prepares; the fork scan itself stays serial
		// (instances behind the limits are small enough that scratch reuse
		// dominates), so there is no ParallelWorthwhile.
		Preparable:       func(Problem, Options) bool { return true },
		CandidatePeriods: commForkCandidatePeriods,
		SeedMix: func(pr Problem, mix func(float64)) {
			mix(pr.CommFork.Root)
			mix(pr.CommFork.In)
			mix(pr.CommFork.Out0)
			for _, w := range pr.CommFork.Weights {
				mix(w)
			}
			for _, o := range pr.CommFork.Outs {
				mix(o)
			}
		},
		AppendFingerprint: func(pr Problem, b []byte) []byte {
			b = fpFloat(append(b, 'G'), pr.CommFork.Root)
			b = fpFloat(b, pr.CommFork.In)
			b = fpFloat(b, pr.CommFork.Out0)
			b = fpFloats(b, pr.CommFork.Weights)
			b = fpFloats(b, pr.CommFork.Outs)
			return fpBandwidth(b, pr.Bandwidth)
		},
	})

	// Comm-pipeline cells. Fully homogeneous platforms are polynomial
	// (latency objectives by the interval DP, period objectives by binary
	// search over the candidate periods); heterogeneous platforms are
	// NP-hard and solved exhaustively within the fork limits.
	for _, gh := range bools {
		for _, obj := range objs {
			method := MethodDP
			if obj == MinPeriod || obj == PeriodUnderLatency {
				method = MethodBinarySearchDP
			}
			register(CellKey{workflow.KindCommPipeline, true, gh, false, obj},
				SolverEntry{method, true, "Section 3.2 (hom. platform)", solveCommPipeHom, prepareCommPipeHom})
			register(CellKey{workflow.KindCommPipeline, false, gh, false, obj},
				SolverEntry{MethodExhaustive, true, "Section 3.2 (het. platform)", solveCommPipeHard, prepareCommPipeHard})
		}
	}
	// Comm-fork cells: NP-hard on every axis combination (the one-port
	// serialization makes even uniform instances a partition problem).
	for _, ph := range bools {
		for _, gh := range bools {
			for _, obj := range objs {
				register(CellKey{workflow.KindCommFork, ph, gh, false, obj},
					SolverEntry{MethodExhaustive, true, "Section 3.3 (one-port fork)", solveCommForkHard, prepareCommFork})
			}
		}
	}
}

// classifyCommPipeline is the Classify capability of the comm-pipeline
// kind: polynomial on fully homogeneous platforms, NP-hard otherwise.
func classifyCommPipeline(k CellKey) Classification {
	if !k.PlatformHomogeneous {
		return Classification{NPHard, "Section 3.2 (het. platform)"}
	}
	if k.Objective == MinPeriod || k.Objective == PeriodUnderLatency {
		return Classification{PolyBinarySearchDP, "Section 3.2 (hom. platform)"}
	}
	return Classification{PolyDP, "Section 3.2 (hom. platform)"}
}

// commPipeInLimits gates the exhaustive comm-pipeline search: the
// enumeration assigns intervals to distinct processors, so it reuses the
// fork limits (stage count and processor count).
func commPipeInLimits(pr Problem, opts Options) bool {
	return pr.CommPipeline.Stages() <= opts.MaxExhaustiveForkStages &&
		pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
}

// commForkInLimits gates the exhaustive one-port fork search.
func commForkInLimits(pr Problem, opts Options) bool {
	return pr.CommFork.Leaves()+1 <= opts.MaxExhaustiveForkStages &&
		pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
}

// commForkCandidatePeriods approximates the achievable period set of a
// one-port fork with the communication-free block weights expanded over
// the raw speeds. The true period adds transfer terms, so this set is
// deliberately coarse — missing candidates only coarsen the Pareto front
// between points, exactly like the oversized-platform speed-sum
// approximation of subsetSpeedSums.
func commForkCandidatePeriods(pr Problem) []float64 {
	f := pr.CommFork
	return periodsFromWeights(forkBlockWeights(f.Root, 0, false, f.Weights), pr.Platform)
}

// commPipeSolution wraps a comm-pipeline mapping into a Solution.
func commPipeSolution(m fullmodel.Mapping, c fullmodel.Cost, method Method, exact bool, cl Classification) Solution {
	return Solution{
		CommPipelineMapping: &m, Cost: commCost(c),
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

// commForkSolution wraps a one-port fork mapping into a Solution.
func commForkSolution(m fullmodel.ForkMapping, c fullmodel.Cost, method Method, exact bool, cl Classification) Solution {
	return Solution{
		CommForkMapping: &m, Cost: commCost(c),
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

// methodForCommPipeObjective mirrors the registration table: binary
// search for the period objectives, plain DP for the latency ones.
func methodForCommPipeObjective(o Objective) Method {
	if o == MinPeriod || o == PeriodUnderLatency {
		return MethodBinarySearchDP
	}
	return MethodDP
}

// solveCommPipeHom solves the polynomial hom-platform comm-pipeline
// cells through the fullmodel dynamic programs.
func solveCommPipeHom(_ context.Context, pr Problem, _ Options) (Solution, error) {
	cl := classificationOf(pr)
	method := methodForCommPipeObjective(pr.Objective)
	m, c, ok, err := fullmodel.SolveHom(*pr.CommPipeline, commPlatform(pr), commGoal(pr))
	if err != nil {
		return Solution{}, err
	}
	if !ok {
		return infeasible(method, true, cl), nil
	}
	return commPipeSolution(m, c, method, true, cl), nil
}

// solveCommPipeHard solves the NP-hard het-platform comm-pipeline cells:
// exhaustively within the limits, otherwise by the deterministic
// heuristic seeds.
func solveCommPipeHard(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	cl := classificationOf(pr)
	p, pl, goal := *pr.CommPipeline, commPlatform(pr), commGoal(pr)
	if commPipeInLimits(pr, opts) {
		pp, err := fullmodel.NewPipelinePreparedTable(p, commTable(pr))
		if err != nil {
			return Solution{}, err
		}
		pp.SetParallelism(searchParallelism(opts, pr))
		m, c, ok, err := pp.SolveExact(ctx, goal)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return commPipeSolution(m, c, MethodExhaustive, true, cl), nil
	}
	cands := fullmodel.HeuristicCandidates(p, pl)
	costs := make([]mapping.Cost, len(cands))
	full := make([]fullmodel.Cost, len(cands))
	for i, m := range cands {
		c, err := fullmodel.Eval(p, pl, m)
		if err != nil {
			return Solution{}, err
		}
		costs[i], full[i] = commCost(c), c
	}
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl), nil
	}
	return commPipeSolution(cands[idx], full[idx], MethodHeuristic, false, cl), nil
}

// solveCommForkHard solves every one-port fork cell: exhaustively within
// the limits, otherwise by the deterministic heuristic seeds (each
// finished with its latency-optimal send order).
func solveCommForkHard(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	cl := classificationOf(pr)
	f, pl, goal := *pr.CommFork, commPlatform(pr), commGoal(pr)
	if commForkInLimits(pr, opts) {
		m, c, ok, err := fullmodel.SolveForkExact(ctx, f, pl, goal)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return commForkSolution(m, c, MethodExhaustive, true, cl), nil
	}
	cands := fullmodel.ForkHeuristicCandidates(f, pl)
	costs := make([]mapping.Cost, len(cands))
	full := make([]fullmodel.Cost, len(cands))
	for i, m := range cands {
		c, err := fullmodel.EvalFork(f, pl, m, false)
		if err != nil {
			return Solution{}, err
		}
		costs[i], full[i] = commCost(c), c
	}
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl), nil
	}
	return commForkSolution(cands[idx], full[idx], MethodHeuristic, false, cl), nil
}

// prepareCommPipeHom is the Prepare capability of the polynomial
// hom-platform comm-pipeline cells: one fullmodel.PipelinePrepared —
// shared bound-platform table, reusable DP arrays, the candidate-period
// set, a per-goal memo — serves every objective of the family,
// byte-identical to solveCommPipeHom.
func prepareCommPipeHom(pr Problem, _ Options) *PreparedCell {
	pp, err := fullmodel.NewPipelinePreparedTable(*pr.CommPipeline, commTable(pr))
	if err != nil {
		return nil
	}
	solve := func(_ context.Context, pr2 Problem) (Solution, error) {
		cl := classificationOf(pr2)
		method := methodForCommPipeObjective(pr2.Objective)
		m, c, ok, err := pp.SolveHom(commGoal(pr2))
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(method, true, cl), nil
		}
		return commPipeSolution(m, c, method, true, cl), nil
	}
	return &PreparedCell{Solve: solve}
}

// prepareCommPipeHard is the Prepare capability of the NP-hard
// het-platform comm-pipeline cells: within the exhaustive limits one
// fullmodel.PipelinePrepared shares the work table, enumeration scratch
// and per-goal memo (with the optionally partitioned scan), byte-identical
// to solveCommPipeHard; beyond them the goal-independent heuristic
// candidate set and its evaluations are computed once, leaving only the
// per-goal bound check to each solve.
func prepareCommPipeHard(pr Problem, opts Options) *PreparedCell {
	p, t := *pr.CommPipeline, commTable(pr)
	if commPipeInLimits(pr, opts) {
		pp, err := fullmodel.NewPipelinePreparedTable(p, t)
		if err != nil {
			return nil
		}
		pp.SetParallelism(searchParallelism(opts, pr))
		solve := func(ctx context.Context, pr2 Problem) (Solution, error) {
			cl := classificationOf(pr2)
			m, c, ok, err := pp.SolveExact(ctx, commGoal(pr2))
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodExhaustive, true, cl), nil
			}
			return commPipeSolution(m, c, MethodExhaustive, true, cl), nil
		}
		return &PreparedCell{Solve: solve, SetParallelism: pp.SetParallelism}
	}
	cands := fullmodel.HeuristicCandidates(p, t.Plat)
	costs := make([]mapping.Cost, len(cands))
	full := make([]fullmodel.Cost, len(cands))
	for i, m := range cands {
		c, err := fullmodel.Eval(p, t.Plat, m)
		if err != nil {
			return nil
		}
		costs[i], full[i] = commCost(c), c
	}
	solve := func(_ context.Context, pr2 Problem) (Solution, error) {
		cl := classificationOf(pr2)
		idx, ok := pickBestIndex(costs, pr2)
		if !ok {
			return infeasible(MethodHeuristic, false, cl), nil
		}
		m := fullmodel.Mapping{
			Bounds: append([]int(nil), cands[idx].Bounds...),
			Alloc:  append([]int(nil), cands[idx].Alloc...),
		}
		return commPipeSolution(m, full[idx], MethodHeuristic, false, cl), nil
	}
	return &PreparedCell{Solve: solve}
}

// prepareCommFork is the Prepare capability of the one-port fork cells:
// within the exhaustive limits one fullmodel.ForkPrepared shares the
// partition/assignment scratch, send-order buffers and per-goal memo,
// byte-identical to solveCommForkHard; beyond them the heuristic
// candidate set (each finished with its latency-optimal send order) and
// its evaluations are computed once.
func prepareCommFork(pr Problem, opts Options) *PreparedCell {
	f, t := *pr.CommFork, commTable(pr)
	if commForkInLimits(pr, opts) {
		fp, err := fullmodel.NewForkPrepared(f, t.Plat)
		if err != nil {
			return nil
		}
		solve := func(ctx context.Context, pr2 Problem) (Solution, error) {
			cl := classificationOf(pr2)
			m, c, ok, err := fp.SolveExact(ctx, commGoal(pr2))
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodExhaustive, true, cl), nil
			}
			return commForkSolution(m, c, MethodExhaustive, true, cl), nil
		}
		return &PreparedCell{Solve: solve}
	}
	cands := fullmodel.ForkHeuristicCandidates(f, t.Plat)
	costs := make([]mapping.Cost, len(cands))
	full := make([]fullmodel.Cost, len(cands))
	for i, m := range cands {
		c, err := fullmodel.EvalFork(f, t.Plat, m, false)
		if err != nil {
			return nil
		}
		costs[i], full[i] = commCost(c), c
	}
	solve := func(_ context.Context, pr2 Problem) (Solution, error) {
		cl := classificationOf(pr2)
		idx, ok := pickBestIndex(costs, pr2)
		if !ok {
			return infeasible(MethodHeuristic, false, cl), nil
		}
		return commForkSolution(cloneCommForkMapping(cands[idx]), full[idx], MethodHeuristic, false, cl), nil
	}
	return &PreparedCell{Solve: solve}
}

// cloneCommForkMapping deep-copies a fork mapping so prepared solves
// never hand out aliases of the cached candidate set. Nil-ness of every
// slice is preserved so clones stay deep-equal to the one-shot results.
func cloneCommForkMapping(m fullmodel.ForkMapping) fullmodel.ForkMapping {
	out := fullmodel.ForkMapping{
		RootBlock: m.RootBlock,
		Blocks:    make([]fullmodel.ForkBlock, len(m.Blocks)),
		SendOrder: cloneInts(m.SendOrder),
	}
	for i, b := range m.Blocks {
		out.Blocks[i] = fullmodel.ForkBlock{Proc: b.Proc, Leaves: cloneInts(b.Leaves)}
	}
	return out
}

// cloneInts copies an int slice preserving nil-ness.
func cloneInts(s []int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}
