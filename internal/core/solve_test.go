package core

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

var section2 = workflow.NewPipeline(14, 4, 2, 4)

func TestSolveSection2HomPlatform(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	// Period: 8 by Theorem 1.
	sol, err := Solve(pipeProblem(section2, pl, true, MinPeriod, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !sol.Exact || !numeric.Eq(sol.Cost.Period, 8) {
		t.Errorf("period solution: %v", sol)
	}
	if sol.Method != MethodClosedForm {
		t.Errorf("method = %v, want closed-form", sol.Method)
	}
	// Latency with data-parallelism: 17 by Theorem 3.
	sol, err = Solve(pipeProblem(section2, pl, true, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(sol.Cost.Latency, 17) || sol.Method != MethodDP {
		t.Errorf("latency solution: %v", sol)
	}
	// Latency under period 8 forces full replication (latency 24).
	sol, err = Solve(pipeProblem(section2, pl, true, LatencyUnderPeriod, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(sol.Cost.Latency, 24) {
		t.Errorf("bi-criteria solution: %v", sol)
	}
	// Infeasible period bound.
	sol, err = Solve(pipeProblem(section2, pl, true, LatencyUnderPeriod, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Error("infeasible bound accepted")
	}
}

func TestSolveSection2HetPlatformExhaustive(t *testing.T) {
	// The NP-hard cell (data-parallelism on a heterogeneous platform) is
	// solved exactly for this small instance; the model-consistent optima
	// are period 4.5 and latency 8.5 (see EXPERIMENTS.md for the
	// discrepancy with the paper's claimed 5 and 12.8).
	pl := platform.New(2, 2, 1, 1)
	sol, err := Solve(pipeProblem(section2, pl, true, MinPeriod, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodExhaustive || !sol.Exact || !numeric.Eq(sol.Cost.Period, 4.5) {
		t.Errorf("het period solution: %v", sol)
	}
	if sol.Classification.Complexity != NPHard {
		t.Errorf("classification = %v, want NP-hard", sol.Classification.Complexity)
	}
	sol, err = Solve(pipeProblem(section2, pl, true, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(sol.Cost.Latency, 8.5) {
		t.Errorf("het latency solution: %v", sol)
	}
}

func TestSolveHeuristicFallback(t *testing.T) {
	// Force the heuristic path with a tiny exhaustive limit.
	pl := platform.New(2, 2, 1, 1)
	opts := Options{MaxExhaustivePipelineProcs: 2}
	sol, err := Solve(pipeProblem(section2, pl, true, MinPeriod, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodHeuristic || sol.Exact {
		t.Errorf("expected heuristic solution, got %v", sol)
	}
	// Heuristic must stay sound: not better than the true optimum 4.5.
	if numeric.Less(sol.Cost.Period, 4.5) {
		t.Errorf("heuristic beats the optimum: %v", sol.Cost.Period)
	}
	// And the mapping must actually achieve the reported cost.
	got, err := mapping.EvalPipeline(section2, pl, *sol.PipelineMapping)
	if err != nil || !numeric.Eq(got.Period, sol.Cost.Period) {
		t.Errorf("reported %v, evaluated %v (err=%v)", sol.Cost, got, err)
	}
}

func TestSolveTheorem7Path(t *testing.T) {
	p := workflow.HomogeneousPipeline(5, 3)
	pl := platform.New(4, 2, 1)
	sol, err := Solve(pipeProblem(p, pl, false, MinPeriod, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodBinarySearchDP || !sol.Exact {
		t.Errorf("expected Theorem 7 path, got %v", sol)
	}
	opt, _ := exhaustive.PipelinePeriod(p, pl, false)
	if !numeric.Eq(sol.Cost.Period, opt.Cost.Period) {
		t.Errorf("period %v != exhaustive %v", sol.Cost.Period, opt.Cost.Period)
	}
}

func TestSolveForkPaths(t *testing.T) {
	homFork := workflow.HomogeneousFork(2, 3, 1)
	hetFork := workflow.NewFork(2, 1, 3)
	homPlat := platform.Homogeneous(3, 1)
	hetPlat := platform.New(1, 2, 3)

	// Theorem 10 closed form.
	sol, err := Solve(forkProblem(hetFork, homPlat, false, MinPeriod, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodClosedForm || !numeric.Eq(sol.Cost.Period, 2) { // 6/3
		t.Errorf("Theorem 10 path: %v", sol)
	}
	// Theorem 11 DP.
	sol, err = Solve(forkProblem(homFork, homPlat, true, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodDP || !sol.Exact {
		t.Errorf("Theorem 11 path: %v", sol)
	}
	// Theorem 14 binary search.
	sol, err = Solve(forkProblem(homFork, hetPlat, false, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodBinarySearchDP || !sol.Exact {
		t.Errorf("Theorem 14 path: %v", sol)
	}
	// NP-hard fork cell solved exhaustively at small size.
	sol, err = Solve(forkProblem(hetFork, homPlat, false, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodExhaustive || !sol.Exact {
		t.Errorf("NP-hard fork path: %v", sol)
	}
	opt, _ := exhaustive.ForkLatency(hetFork, homPlat, false)
	if !numeric.Eq(sol.Cost.Latency, opt.Cost.Latency) {
		t.Errorf("latency %v != exhaustive %v", sol.Cost.Latency, opt.Cost.Latency)
	}
	// Same cell with a tiny limit falls back to the heuristic.
	sol, err = Solve(forkProblem(hetFork, homPlat, false, MinLatency, 0), Options{MaxExhaustiveForkStages: 1, MaxExhaustiveForkProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodHeuristic || sol.Exact {
		t.Errorf("heuristic fork path: %v", sol)
	}
	if numeric.Less(sol.Cost.Latency, opt.Cost.Latency) {
		t.Errorf("heuristic beats optimum: %v < %v", sol.Cost.Latency, opt.Cost.Latency)
	}
}

func TestSolveForkJoinPaths(t *testing.T) {
	homFJ := workflow.HomogeneousForkJoin(2, 1, 2, 1)
	hetFJ := workflow.NewForkJoin(2, 1, 1, 3)
	homPlat := platform.Homogeneous(2, 1)
	hetPlat := platform.New(1, 2)

	sol, err := Solve(forkJoinProblem(homFJ, homPlat, false, MinPeriod, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodClosedForm || !numeric.Eq(sol.Cost.Period, 2.5) { // 5/2
		t.Errorf("fork-join Theorem 10 path: %v", sol)
	}
	sol, err = Solve(forkJoinProblem(homFJ, homPlat, false, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodDP || !sol.Exact {
		t.Errorf("fork-join Theorem 11 path: %v", sol)
	}
	sol, err = Solve(forkJoinProblem(homFJ, hetPlat, false, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodBinarySearchDP || !sol.Exact {
		t.Errorf("fork-join Theorem 14 path: %v", sol)
	}
	// NP-hard fork-join cell (heterogeneous leaves, het platform).
	sol, err = Solve(forkJoinProblem(hetFJ, hetPlat, false, MinLatency, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodExhaustive || !sol.Exact {
		t.Errorf("fork-join NP-hard path: %v", sol)
	}
	// Heuristic fallback stays sound.
	solH, err := Solve(forkJoinProblem(hetFJ, hetPlat, false, MinLatency, 0), Options{MaxExhaustiveForkStages: 1, MaxExhaustiveForkProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if solH.Method != MethodHeuristic || numeric.Less(solH.Cost.Latency, sol.Cost.Latency) {
		t.Errorf("fork-join heuristic path: %v (optimum %v)", solH, sol.Cost)
	}
}

func TestSolveMatchesExhaustiveOnRandomInstances(t *testing.T) {
	// End-to-end: on small instances every Solve result that claims Exact
	// must coincide with exhaustive search.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		dp := rng.Intn(2) == 0
		obj := []Objective{MinPeriod, MinLatency}[rng.Intn(2)]
		if rng.Intn(2) == 0 {
			p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
			pl := platform.Random(rng, 1+rng.Intn(4), 4)
			sol, err := Solve(pipeProblem(p, pl, dp, obj, 0), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Exact {
				continue
			}
			var want float64
			if obj == MinPeriod {
				opt, _ := exhaustive.PipelinePeriod(p, pl, dp)
				want = opt.Cost.Period
			} else {
				opt, _ := exhaustive.PipelineLatency(p, pl, dp)
				want = opt.Cost.Latency
			}
			if !numeric.Eq(objectiveValue(sol.Cost, obj), want) {
				t.Fatalf("trial %d: pipeline %v dp=%v obj=%v: Solve %v != exhaustive %v (%v)",
					trial, p.Weights, dp, obj, objectiveValue(sol.Cost, obj), want, sol)
			}
		} else {
			f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
			pl := platform.Random(rng, 1+rng.Intn(3), 4)
			sol, err := Solve(forkProblem(f, pl, dp, obj, 0), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Exact {
				continue
			}
			var want float64
			if obj == MinPeriod {
				opt, _ := exhaustive.ForkPeriod(f, pl, dp)
				want = opt.Cost.Period
			} else {
				opt, _ := exhaustive.ForkLatency(f, pl, dp)
				want = opt.Cost.Latency
			}
			if !numeric.Eq(objectiveValue(sol.Cost, obj), want) {
				t.Fatalf("trial %d: fork %+v dp=%v obj=%v: Solve %v != exhaustive %v (%v)",
					trial, f, dp, obj, objectiveValue(sol.Cost, obj), want, sol)
			}
		}
	}
}

func TestSolutionString(t *testing.T) {
	pl := platform.Homogeneous(2, 1)
	sol, err := Solve(pipeProblem(section2, pl, false, MinPeriod, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := sol.String(); s == "" {
		t.Error("empty solution string")
	}
	inf := infeasible(MethodDP, true, Classification{PolyDP, "Theorem 4"})
	if s := inf.String(); s == "" {
		t.Error("empty infeasible string")
	}
	for _, m := range []Method{MethodClosedForm, MethodDP, MethodBinarySearchDP, MethodExhaustive, MethodHeuristic, Method(9)} {
		if m.String() == "" {
			t.Error("empty method string")
		}
	}
}
