package core

import (
	"context"

	"repliflow/internal/exhaustive"
	"repliflow/internal/forkalgo"
	"repliflow/internal/heuristics"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/workflow"
)

func forkSolution(m mapping.ForkMapping, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	cp := m
	return Solution{
		ForkMapping: &cp, Cost: c,
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

func forkJoinSolution(m mapping.ForkJoinMapping, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	cp := m
	return Solution{
		ForkJoinMapping: &cp, Cost: c,
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

// wholeForkOnProcessor maps the entire fork onto the single processor q.
func wholeForkOnProcessor(f workflow.Fork, q int) mapping.ForkMapping {
	leaves := make([]int, f.Leaves())
	for i := range leaves {
		leaves[i] = i
	}
	return mapping.ForkMapping{Blocks: []mapping.ForkBlock{
		mapping.NewForkBlock(true, leaves, mapping.Replicated, q),
	}}
}

// wholeForkJoinOnProcessor maps the entire fork-join onto processor q.
func wholeForkJoinOnProcessor(fj workflow.ForkJoin, q int) mapping.ForkJoinMapping {
	leaves := make([]int, fj.Leaves())
	for i := range leaves {
		leaves[i] = i
	}
	return mapping.ForkJoinMapping{Blocks: []mapping.ForkJoinBlock{
		mapping.NewForkJoinBlock(true, true, leaves, mapping.Replicated, q),
	}}
}

// registerForkSolvers populates the registry with the fork and fork-join
// columns of Table 1; fork-joins classify exactly as forks (Section 6.3),
// so both kinds share the registration structure with kind-specific solver
// funcs.
func init() {
	bools := []bool{false, true}
	objs := []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency}

	registerKind(KindSpec{
		Kind:             workflow.KindFork,
		Name:             workflow.KindFork.String(),
		HasGraph:         func(pr Problem) bool { return pr.Fork != nil },
		ValidateGraph:    func(pr Problem) error { return pr.Fork.Validate() },
		GraphHomogeneous: func(pr Problem) bool { return pr.Fork.IsHomogeneous() },
		DataParallel:     true,
		Classify:         classifyLegacy,
		ExactlySolvable: func(pr Problem, opts Options) bool {
			return pr.Fork.Leaves()+1 <= opts.MaxExhaustiveForkStages &&
				pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
		},
		// Preparable mirrors prepareForkHard's gate: only the in-limit
		// exhaustive path shares state worth preparing.
		Preparable: func(pr Problem, opts Options) bool {
			return pr.Fork.Leaves()+1 <= opts.MaxExhaustiveForkStages &&
				pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
		},
		ParallelWorthwhile: func(pr Problem) bool {
			return pr.Fork.Leaves()+1 >= parMinForkItems &&
				pr.Platform.Processors() >= parMinForkProcs
		},
		CandidatePeriods: forkCandidatePeriods,
		Anytime:          solveForkAnytime,
		SeedMix: func(pr Problem, mix func(float64)) {
			mix(pr.Fork.Root)
			for _, w := range pr.Fork.Weights {
				mix(w)
			}
		},
		AppendFingerprint: func(pr Problem, b []byte) []byte {
			b = fpFloat(append(b, 'F'), pr.Fork.Root)
			return fpFloats(b, pr.Fork.Weights)
		},
	})
	registerKind(KindSpec{
		Kind:             workflow.KindForkJoin,
		Name:             workflow.KindForkJoin.String(),
		HasGraph:         func(pr Problem) bool { return pr.ForkJoin != nil },
		ValidateGraph:    func(pr Problem) error { return pr.ForkJoin.Validate() },
		GraphHomogeneous: func(pr Problem) bool { return pr.ForkJoin.IsHomogeneous() },
		DataParallel:     true,
		Classify:         classifyLegacy,
		ExactlySolvable: func(pr Problem, opts Options) bool {
			return pr.ForkJoin.Leaves()+2 <= opts.MaxExhaustiveForkStages &&
				pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
		},
		// Preparable mirrors prepareForkJoinHard's gate.
		Preparable: func(pr Problem, opts Options) bool {
			return pr.ForkJoin.Leaves()+2 <= opts.MaxExhaustiveForkStages &&
				pr.Platform.Processors() <= opts.MaxExhaustiveForkProcs
		},
		ParallelWorthwhile: func(pr Problem) bool {
			return pr.ForkJoin.Leaves()+2 >= parMinForkItems &&
				pr.Platform.Processors() >= parMinForkProcs
		},
		CandidatePeriods: forkJoinCandidatePeriods,
		Anytime:          solveForkJoinAnytime,
		SeedMix: func(pr Problem, mix func(float64)) {
			mix(pr.ForkJoin.Root)
			mix(pr.ForkJoin.Join)
			for _, w := range pr.ForkJoin.Weights {
				mix(w)
			}
		},
		AppendFingerprint: func(pr Problem, b []byte) []byte {
			b = fpFloat(append(b, 'J'), pr.ForkJoin.Root)
			b = fpFloat(b, pr.ForkJoin.Join)
			return fpFloats(b, pr.ForkJoin.Weights)
		},
	})
	for _, kind := range []workflow.Kind{workflow.KindFork, workflow.KindForkJoin} {
		periodSolver, t11, t14, hard := solveForkHomPeriod, solveForkTheorem11, solveForkTheorem14, solveForkHard
		prepare := prepareForkHard
		if kind == workflow.KindForkJoin {
			periodSolver, t11, t14, hard = solveForkJoinHomPeriod, solveForkJoinTheorem11, solveForkJoinTheorem14, solveForkJoinHard
			prepare = prepareForkJoinHard
		}

		// Homogeneous platforms: period is straightforward (Theorem 10);
		// the remaining objectives are polynomial only for homogeneous
		// forks (Theorem 11) and NP-hard otherwise (Theorem 12).
		for _, gh := range bools {
			for _, dp := range bools {
				register(CellKey{kind, true, gh, dp, MinPeriod},
					SolverEntry{MethodClosedForm, true, "Theorem 10", periodSolver, nil})
			}
		}
		for _, dp := range bools {
			for _, obj := range objs[1:] {
				register(CellKey{kind, true, true, dp, obj},
					SolverEntry{MethodDP, true, "Theorem 11", t11, nil})
				register(CellKey{kind, true, false, dp, obj},
					SolverEntry{MethodExhaustive, true, "Theorem 12", hard, prepare})
			}
		}

		// Heterogeneous platforms: homogeneous forks without
		// data-parallelism stay polynomial (Theorem 14); data-parallelism
		// is NP-hard (Theorem 13), and so are heterogeneous forks
		// (Theorems 12/15).
		for _, obj := range objs {
			register(CellKey{kind, false, true, false, obj},
				SolverEntry{MethodBinarySearchDP, true, "Theorem 14", t14, nil})
			source := "Theorems 12/15"
			if obj == MinPeriod {
				source = "Theorem 15"
			}
			register(CellKey{kind, false, false, false, obj},
				SolverEntry{MethodExhaustive, true, source, hard, prepare})
			for _, gh := range bools {
				register(CellKey{kind, false, gh, true, obj},
					SolverEntry{MethodExhaustive, true, "Theorem 13", hard, prepare})
			}
		}
	}
}

// --- Fork solvers ----------------------------------------------------------

func solveForkHomPeriod(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := forkalgo.HomForkPeriod(*pr.Fork, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return forkSolution(res.Mapping, res.Cost, MethodClosedForm, true, classificationOf(pr)), nil
}

func solveForkTheorem11(_ context.Context, pr Problem, _ Options) (Solution, error) {
	f, pl, dp := *pr.Fork, pr.Platform, pr.AllowDataParallel
	cl := classificationOf(pr)
	switch pr.Objective {
	case MinLatency:
		res, err := forkalgo.HomForkLatency(f, pl, dp)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HomForkLatencyUnderPeriod(f, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default: // PeriodUnderLatency
		res, ok, err := forkalgo.HomForkPeriodUnderLatency(f, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func solveForkTheorem14(_ context.Context, pr Problem, _ Options) (Solution, error) {
	f, pl := *pr.Fork, pr.Platform
	cl := classificationOf(pr)
	switch pr.Objective {
	case MinPeriod:
		res, err := forkalgo.HetHomForkPeriodNoDP(f, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case MinLatency:
		res, err := forkalgo.HetHomForkLatencyNoDP(f, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HetHomForkLatencyUnderPeriodNoDP(f, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HetHomForkPeriodUnderLatencyNoDP(f, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	}
}

// solveForkHard handles the NP-hard fork cells: exact set-partition search
// (with cancellation checkpoints) within the exhaustive limits, polynomial
// heuristics polished by hill climbing beyond them.
func solveForkHard(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	f := *pr.Fork
	pl := pr.Platform
	cl := classificationOf(pr)
	if f.Leaves()+1 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		res, ok, err := exhaustiveFork(ctx, pr, searchParallelism(opts, pr))
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl), nil
	}
	maps, costs := forkHeuristicCandidates(pr)
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl), nil
	}
	best, bestCost := maps[idx], costs[idx]
	// Polish with hill climbing on the optimized criterion, keeping the
	// result only if it still honours the bound.
	obj := heuristics.ForkMinLatency
	if pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency {
		obj = heuristics.ForkMinPeriod
	}
	if m, c, err := heuristics.LocalSearchFork(f, pl, best, obj); err == nil {
		ok := true
		switch pr.Objective {
		case LatencyUnderPeriod:
			ok = !numeric.Greater(c.Period, pr.Bound)
		case PeriodUnderLatency:
			ok = !numeric.Greater(c.Latency, pr.Bound)
		}
		if ok && numeric.Less(objectiveValue(c, pr.Objective), objectiveValue(bestCost, pr.Objective)) {
			best, bestCost = m, c
		}
	}
	return forkSolution(best, bestCost, MethodHeuristic, false, cl), nil
}

// exhaustiveFork runs the exact set-partition search matching pr's
// objective — shared by the unbudgeted exact path and the anytime
// portfolio's exact member. par is the resolved worker count of the
// sharded scan (<= 1 serial); it never changes the result.
func exhaustiveFork(ctx context.Context, pr Problem, par int) (exhaustive.ForkResult, bool, error) {
	fp := exhaustive.NewForkPrepared(*pr.Fork, pr.Platform, pr.AllowDataParallel)
	fp.SetParallelism(par)
	return preparedForkDispatch(ctx, fp, pr)
}

// exhaustiveForkJoin is exhaustiveFork for fork-join graphs.
func exhaustiveForkJoin(ctx context.Context, pr Problem, par int) (exhaustive.ForkJoinResult, bool, error) {
	fp := exhaustive.NewForkJoinPrepared(*pr.ForkJoin, pr.Platform, pr.AllowDataParallel)
	fp.SetParallelism(par)
	return preparedForkJoinDispatch(ctx, fp, pr)
}

// forkHeuristicCandidates returns the polynomial heuristic mappings of
// an NP-hard fork instance (with their costs, aligned by index): the
// candidate pool of both the heuristic fallback path and the anytime
// portfolio's seeds.
func forkHeuristicCandidates(pr Problem) ([]mapping.ForkMapping, []mapping.Cost) {
	f, pl := *pr.Fork, pr.Platform
	var maps []mapping.ForkMapping
	var costs []mapping.Cost
	add := func(m mapping.ForkMapping) {
		if c, err := mapping.EvalFork(f, pl, m); err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	add(mapping.ReplicateAllFork(f, pl))
	add(wholeForkOnProcessor(f, pl.Fastest()))
	if m, _, err := heuristics.HetForkPeriodGreedy(f, pl); err == nil {
		add(m)
	}
	if pl.IsHomogeneous() {
		if m, _, err := heuristics.HetForkLatencyLPT(f, pl); err == nil {
			add(m)
		}
	}
	return maps, costs
}

// --- Fork-join solvers -----------------------------------------------------

func solveForkJoinHomPeriod(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := forkalgo.HomForkJoinPeriod(*pr.ForkJoin, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return forkJoinSolution(res.Mapping, res.Cost, MethodClosedForm, true, classificationOf(pr)), nil
}

func solveForkJoinTheorem11(_ context.Context, pr Problem, _ Options) (Solution, error) {
	fj, pl, dp := *pr.ForkJoin, pr.Platform, pr.AllowDataParallel
	cl := classificationOf(pr)
	switch pr.Objective {
	case MinLatency:
		res, err := forkalgo.HomForkJoinLatency(fj, pl, dp)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HomForkJoinLatencyUnderPeriod(fj, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HomForkJoinPeriodUnderLatency(fj, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func solveForkJoinTheorem14(_ context.Context, pr Problem, _ Options) (Solution, error) {
	fj, pl := *pr.ForkJoin, pr.Platform
	cl := classificationOf(pr)
	switch pr.Objective {
	case MinPeriod:
		res, err := forkalgo.HetHomForkJoinPeriodNoDP(fj, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case MinLatency:
		res, err := forkalgo.HetHomForkJoinLatencyNoDP(fj, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HetHomForkJoinLatencyUnderPeriodNoDP(fj, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HetHomForkJoinPeriodUnderLatencyNoDP(fj, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	}
}

func solveForkJoinHard(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	fj := *pr.ForkJoin
	pl := pr.Platform
	cl := classificationOf(pr)
	if fj.Leaves()+2 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		res, ok, err := exhaustiveForkJoin(ctx, pr, searchParallelism(opts, pr))
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl), nil
	}
	maps, costs := forkJoinHeuristicCandidates(pr)
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl), nil
	}
	return forkJoinSolution(maps[idx], costs[idx], MethodHeuristic, false, cl), nil
}

// forkJoinHeuristicCandidates returns the polynomial heuristic mappings
// of an NP-hard fork-join instance (with their costs, aligned by index):
// the candidate pool of both the heuristic fallback path and the anytime
// portfolio's seeds.
func forkJoinHeuristicCandidates(pr Problem) ([]mapping.ForkJoinMapping, []mapping.Cost) {
	fj, pl := *pr.ForkJoin, pr.Platform
	var maps []mapping.ForkJoinMapping
	var costs []mapping.Cost
	add := func(m mapping.ForkJoinMapping) {
		if c, err := mapping.EvalForkJoin(fj, pl, m); err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	add(mapping.ReplicateAllForkJoin(fj, pl))
	add(wholeForkJoinOnProcessor(fj, pl.Fastest()))
	minPeriod := pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency
	if m, _, err := heuristics.HetForkJoinGreedy(fj, pl, minPeriod); err == nil {
		add(m)
	}
	return maps, costs
}

// preparedForkDispatch is exhaustiveFork on a shared prepared solver.
func preparedForkDispatch(ctx context.Context, fp *exhaustive.ForkPrepared, pr Problem) (exhaustive.ForkResult, bool, error) {
	switch pr.Objective {
	case MinPeriod:
		return fp.Period(ctx)
	case MinLatency:
		return fp.Latency(ctx)
	case LatencyUnderPeriod:
		return fp.LatencyUnderPeriod(ctx, pr.Bound)
	default:
		return fp.PeriodUnderLatency(ctx, pr.Bound)
	}
}

// prepareForkHard is the registry Prepare capability of the NP-hard fork
// cells: within the exhaustive limits it shares one
// exhaustive.ForkPrepared — enumeration scratch, anytime bounds,
// per-bound memo — across every solve of the family, byte-identical to
// solveForkHard. Outside the limits it returns nil.
func prepareForkHard(pr Problem, opts Options) *PreparedCell {
	if pr.Fork.Leaves()+1 > opts.MaxExhaustiveForkStages || pr.Platform.Processors() > opts.MaxExhaustiveForkProcs {
		return nil
	}
	fp := exhaustive.NewForkPrepared(*pr.Fork, pr.Platform, pr.AllowDataParallel)
	fp.SetParallelism(searchParallelism(opts, pr))
	solve := func(ctx context.Context, pr Problem) (Solution, error) {
		res, ok, err := preparedForkDispatch(ctx, fp, pr)
		if err != nil {
			return Solution{}, err
		}
		cl := classificationOf(pr)
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl), nil
	}
	return &PreparedCell{Solve: solve, SetParallelism: fp.SetParallelism}
}

// preparedForkJoinDispatch is exhaustiveForkJoin on a shared prepared
// solver.
func preparedForkJoinDispatch(ctx context.Context, fp *exhaustive.ForkJoinPrepared, pr Problem) (exhaustive.ForkJoinResult, bool, error) {
	switch pr.Objective {
	case MinPeriod:
		return fp.Period(ctx)
	case MinLatency:
		return fp.Latency(ctx)
	case LatencyUnderPeriod:
		return fp.LatencyUnderPeriod(ctx, pr.Bound)
	default:
		return fp.PeriodUnderLatency(ctx, pr.Bound)
	}
}

// prepareForkJoinHard is prepareForkHard for fork-join graphs.
func prepareForkJoinHard(pr Problem, opts Options) *PreparedCell {
	if pr.ForkJoin.Leaves()+2 > opts.MaxExhaustiveForkStages || pr.Platform.Processors() > opts.MaxExhaustiveForkProcs {
		return nil
	}
	fp := exhaustive.NewForkJoinPrepared(*pr.ForkJoin, pr.Platform, pr.AllowDataParallel)
	fp.SetParallelism(searchParallelism(opts, pr))
	solve := func(ctx context.Context, pr Problem) (Solution, error) {
		res, ok, err := preparedForkJoinDispatch(ctx, fp, pr)
		if err != nil {
			return Solution{}, err
		}
		cl := classificationOf(pr)
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl), nil
	}
	return &PreparedCell{Solve: solve, SetParallelism: fp.SetParallelism}
}
