package core

import (
	"repliflow/internal/exhaustive"
	"repliflow/internal/forkalgo"
	"repliflow/internal/heuristics"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/workflow"
)

func forkSolution(m mapping.ForkMapping, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	cp := m
	return Solution{
		ForkMapping: &cp, Cost: c,
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

// wholeForkOnProcessor maps the entire fork onto the single processor q.
func wholeForkOnProcessor(f workflow.Fork, q int) mapping.ForkMapping {
	leaves := make([]int, f.Leaves())
	for i := range leaves {
		leaves[i] = i
	}
	return mapping.ForkMapping{Blocks: []mapping.ForkBlock{
		mapping.NewForkBlock(true, leaves, mapping.Replicated, q),
	}}
}

func solveFork(pr Problem, opts Options) (Solution, error) {
	f := *pr.Fork
	pl := pr.Platform
	cl, err := Classify(pr)
	if err != nil {
		return Solution{}, err
	}

	if pl.IsHomogeneous() {
		if pr.Objective == MinPeriod {
			res, err := forkalgo.HomForkPeriod(f, pl)
			if err != nil {
				return Solution{}, err
			}
			return forkSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		if f.IsHomogeneous() {
			return solveForkTheorem11(pr, f, cl)
		}
		return solveForkHard(pr, f, cl, opts), nil
	}

	if !pr.AllowDataParallel && f.IsHomogeneous() {
		return solveForkTheorem14(pr, f, cl)
	}
	return solveForkHard(pr, f, cl, opts), nil
}

func solveForkTheorem11(pr Problem, f workflow.Fork, cl Classification) (Solution, error) {
	pl, dp := pr.Platform, pr.AllowDataParallel
	switch pr.Objective {
	case MinLatency:
		res, err := forkalgo.HomForkLatency(f, pl, dp)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HomForkLatencyUnderPeriod(f, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default: // PeriodUnderLatency
		res, ok, err := forkalgo.HomForkPeriodUnderLatency(f, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func solveForkTheorem14(pr Problem, f workflow.Fork, cl Classification) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinPeriod:
		res, err := forkalgo.HetHomForkPeriodNoDP(f, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case MinLatency:
		res, err := forkalgo.HetHomForkLatencyNoDP(f, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HetHomForkLatencyUnderPeriodNoDP(f, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HetHomForkPeriodUnderLatencyNoDP(f, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	}
}

// solveForkHard handles the NP-hard fork cells.
func solveForkHard(pr Problem, f workflow.Fork, cl Classification, opts Options) Solution {
	pl, dp := pr.Platform, pr.AllowDataParallel
	if f.Leaves()+1 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		var res exhaustive.ForkResult
		var ok bool
		switch pr.Objective {
		case MinPeriod:
			res, ok = exhaustive.ForkPeriod(f, pl, dp)
		case MinLatency:
			res, ok = exhaustive.ForkLatency(f, pl, dp)
		case LatencyUnderPeriod:
			res, ok = exhaustive.ForkLatencyUnderPeriod(f, pl, dp, pr.Bound)
		default:
			res, ok = exhaustive.ForkPeriodUnderLatency(f, pl, dp, pr.Bound)
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl)
		}
		return forkSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl)
	}
	var maps []mapping.ForkMapping
	var costs []mapping.Cost
	add := func(m mapping.ForkMapping) {
		if c, err := mapping.EvalFork(f, pl, m); err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	add(mapping.ReplicateAllFork(f, pl))
	add(wholeForkOnProcessor(f, pl.Fastest()))
	if m, _, err := heuristics.HetForkPeriodGreedy(f, pl); err == nil {
		add(m)
	}
	if pl.IsHomogeneous() {
		if m, _, err := heuristics.HetForkLatencyLPT(f, pl); err == nil {
			add(m)
		}
	}
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl)
	}
	best, bestCost := maps[idx], costs[idx]
	// Polish with hill climbing on the optimized criterion, keeping the
	// result only if it still honours the bound.
	obj := heuristics.ForkMinLatency
	if pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency {
		obj = heuristics.ForkMinPeriod
	}
	if m, c, err := heuristics.LocalSearchFork(f, pl, best, obj); err == nil {
		ok := true
		switch pr.Objective {
		case LatencyUnderPeriod:
			ok = !numeric.Greater(c.Period, pr.Bound)
		case PeriodUnderLatency:
			ok = !numeric.Greater(c.Latency, pr.Bound)
		}
		if ok && numeric.Less(objectiveValue(c, pr.Objective), objectiveValue(bestCost, pr.Objective)) {
			best, bestCost = m, c
		}
	}
	return forkSolution(best, bestCost, MethodHeuristic, false, cl)
}

func forkJoinSolution(m mapping.ForkJoinMapping, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	cp := m
	return Solution{
		ForkJoinMapping: &cp, Cost: c,
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

// wholeForkJoinOnProcessor maps the entire fork-join onto processor q.
func wholeForkJoinOnProcessor(fj workflow.ForkJoin, q int) mapping.ForkJoinMapping {
	leaves := make([]int, fj.Leaves())
	for i := range leaves {
		leaves[i] = i
	}
	return mapping.ForkJoinMapping{Blocks: []mapping.ForkJoinBlock{
		mapping.NewForkJoinBlock(true, true, leaves, mapping.Replicated, q),
	}}
}

func solveForkJoin(pr Problem, opts Options) (Solution, error) {
	fj := *pr.ForkJoin
	pl := pr.Platform
	cl, err := Classify(pr)
	if err != nil {
		return Solution{}, err
	}

	if pl.IsHomogeneous() {
		if pr.Objective == MinPeriod {
			res, err := forkalgo.HomForkJoinPeriod(fj, pl)
			if err != nil {
				return Solution{}, err
			}
			return forkJoinSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		if fj.IsHomogeneous() {
			return solveForkJoinTheorem11(pr, fj, cl)
		}
		return solveForkJoinHard(pr, fj, cl, opts), nil
	}
	if !pr.AllowDataParallel && fj.IsHomogeneous() {
		return solveForkJoinTheorem14(pr, fj, cl)
	}
	return solveForkJoinHard(pr, fj, cl, opts), nil
}

func solveForkJoinTheorem11(pr Problem, fj workflow.ForkJoin, cl Classification) (Solution, error) {
	pl, dp := pr.Platform, pr.AllowDataParallel
	switch pr.Objective {
	case MinLatency:
		res, err := forkalgo.HomForkJoinLatency(fj, pl, dp)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HomForkJoinLatencyUnderPeriod(fj, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HomForkJoinPeriodUnderLatency(fj, pl, dp, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func solveForkJoinTheorem14(pr Problem, fj workflow.ForkJoin, cl Classification) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinPeriod:
		res, err := forkalgo.HetHomForkJoinPeriodNoDP(fj, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case MinLatency:
		res, err := forkalgo.HetHomForkJoinLatencyNoDP(fj, pl)
		if err != nil {
			return Solution{}, err
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	case LatencyUnderPeriod:
		res, ok, err := forkalgo.HetHomForkJoinLatencyUnderPeriodNoDP(fj, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	default:
		res, ok, err := forkalgo.HetHomForkJoinPeriodUnderLatencyNoDP(fj, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodBinarySearchDP, true, cl), nil
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
	}
}

func solveForkJoinHard(pr Problem, fj workflow.ForkJoin, cl Classification, opts Options) Solution {
	pl, dp := pr.Platform, pr.AllowDataParallel
	if fj.Leaves()+2 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		var res exhaustive.ForkJoinResult
		var ok bool
		switch pr.Objective {
		case MinPeriod:
			res, ok = exhaustive.ForkJoinPeriod(fj, pl, dp)
		case MinLatency:
			res, ok = exhaustive.ForkJoinLatency(fj, pl, dp)
		case LatencyUnderPeriod:
			res, ok = exhaustive.ForkJoinLatencyUnderPeriod(fj, pl, dp, pr.Bound)
		default:
			res, ok = exhaustive.ForkJoinPeriodUnderLatency(fj, pl, dp, pr.Bound)
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl)
		}
		return forkJoinSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl)
	}
	var maps []mapping.ForkJoinMapping
	var costs []mapping.Cost
	add := func(m mapping.ForkJoinMapping) {
		if c, err := mapping.EvalForkJoin(fj, pl, m); err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	add(mapping.ReplicateAllForkJoin(fj, pl))
	add(wholeForkJoinOnProcessor(fj, pl.Fastest()))
	minPeriod := pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency
	if m, _, err := heuristics.HetForkJoinGreedy(fj, pl, minPeriod); err == nil {
		add(m)
	}
	idx, ok := pickBestIndex(costs, pr)
	if !ok {
		return infeasible(MethodHeuristic, false, cl)
	}
	return forkJoinSolution(maps[idx], costs[idx], MethodHeuristic, false, cl)
}

// Solve classifies the problem into its Table 1 cell and solves it with
// the matching algorithm. The zero Options value applies DefaultOptions.
func Solve(pr Problem, opts Options) (Solution, error) {
	if err := pr.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.normalized()
	switch {
	case pr.Pipeline != nil:
		return solvePipeline(pr, opts)
	case pr.Fork != nil:
		return solveFork(pr, opts)
	default:
		return solveForkJoin(pr, opts)
	}
}
