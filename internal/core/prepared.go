package core

import "context"

// PreparedSolver solves repeated objective/bound variants of one
// (workflow, platform, model) triple — the shape of every Pareto sweep
// and bi-criteria probe sequence. Construct with Prepare. Objectives
// whose dispatch cell advertises the prepared capability run on a shared
// prepared exhaustive solver (shared platform tables, epoch-reset DP
// scratch, per-bound memoization); every other objective falls back to
// SolveContext, so Solve is total over the four objectives either way.
//
// Results are byte-identical to SolveContext on the same problem: a
// caching engine may freely mix prepared and unprepared solves of the
// same instance.
//
// A PreparedSolver is NOT safe for concurrent use — pool instances (one
// per worker) instead of locking.
type PreparedSolver struct {
	base Problem
	opts Options
	fns  [4]PreparedSolve // indexed by Objective
	// setPar retunes the shared prepared solver's worker count (nil when
	// the cell has no parallel path); see SetParallelism.
	setPar func(workers int)
}

// preparableObjectives is every objective a PreparedSolver dispatches.
var preparableObjectives = [...]Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency}

// Prepare returns a prepared solver for the instance under opts, or
// (nil, false) when preparation does not apply: the instance is invalid,
// a positive AnytimeBudget routes solves to the portfolio (whose results
// are time-dependent, so sharing state across solves would change them),
// or the instance's kind spec does not advertise the Preparable
// capability for it (legacy polynomial cells gain nothing from
// preparation; NP-hard kinds prepare their exhaustive path and, where a
// cached heuristic candidate set pays for itself — SP and the
// communication-aware kinds — their oversized path too). The Objective
// and Bound of pr are ignored — Solve supplies them per call.
func Prepare(pr Problem, opts Options) (*PreparedSolver, bool) {
	opts = opts.Normalized()
	if opts.AnytimeBudget > 0 {
		return nil, false
	}
	sub := pr
	sub.Objective = MinPeriod
	sub.Bound = 0
	if err := sub.Validate(); err != nil {
		return nil, false
	}
	// Consult the kind's Preparable capability before probing any cell:
	// the spec decides whether preparation applies to the instance at
	// all, so the pool gate works uniformly across kinds instead of
	// special-casing them here.
	if spec := specOf(sub); spec == nil || spec.Preparable == nil || !spec.Preparable(sub, opts) {
		return nil, false
	}
	ps := &PreparedSolver{base: sub, opts: opts}
	// All hard cells of one graph kind register the same Prepare
	// implementation, so the first successful preparation is shared by
	// every objective whose cell has the capability.
	var shared *PreparedCell
	n := 0
	for _, obj := range preparableObjectives {
		sub.Objective = obj
		e, ok := registry[CellKeyOf(sub)]
		if !ok || e.Prepare == nil {
			continue
		}
		if shared == nil {
			if shared = e.Prepare(sub, opts); shared == nil {
				return nil, false // outside the exhaustive limits
			}
		}
		ps.fns[obj] = shared.Solve
		n++
	}
	if n == 0 {
		return nil, false
	}
	ps.setPar = shared.SetParallelism
	ps.SetParallelism(opts.Parallelism)
	return ps, true
}

// SetParallelism retunes the per-solve search parallelism of subsequent
// Solve calls, using the Options.Parallelism encoding (0/1 serial, n > 1
// explicit workers, negative auto). Results are byte-identical at every
// setting, so engines may retune between solves — donating idle pool
// workers to one solve, withdrawing them for the next — without
// invalidating the shared memos.
func (ps *PreparedSolver) SetParallelism(par int) {
	if ps.setPar == nil {
		return
	}
	ps.opts.Parallelism = par
	ps.setPar(searchParallelism(ps.opts, ps.base))
}

// Solve solves the prepared instance under the given objective and bound
// (bound is ignored by unbounded objectives), byte-identical to
// SolveContext on the same problem — including validation: an invalid
// bound fails with ErrKindInvalidInstance on either path.
func (ps *PreparedSolver) Solve(ctx context.Context, obj Objective, bound float64) (Solution, error) {
	pr := ps.base
	pr.Objective = obj
	pr.Bound = bound
	if int(obj) >= 0 && int(obj) < len(ps.fns) {
		if fn := ps.fns[obj]; fn != nil {
			// The base instance was validated at Prepare time; only the
			// per-call fields can introduce invalidity here. Mirror
			// SolveContext exactly rather than running the fast path on
			// an instance it would reject.
			if obj.Bounded() && bound <= 0 {
				return Solution{}, pr.Validate()
			}
			if err := ctx.Err(); err != nil {
				return Solution{}, err
			}
			return fn(ctx, pr)
		}
	}
	return SolveContext(ctx, pr, ps.opts)
}

// SolveProblem dispatches a fully formed problem through the prepared
// solver. The problem must be the prepared instance up to Objective and
// Bound; that invariant is the caller's (the engine checks it when
// pooling prepared solvers across a batch).
func (ps *PreparedSolver) SolveProblem(ctx context.Context, pr Problem) (Solution, error) {
	return ps.Solve(ctx, pr.Objective, pr.Bound)
}
