package core

import (
	"repliflow/internal/exhaustive"
	"repliflow/internal/heuristics"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/pipealgo"
	"repliflow/internal/workflow"
)

// pipeSolution wraps a pipeline mapping into a Solution.
func pipeSolution(m mapping.PipelineMapping, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	cp := m
	return Solution{
		PipelineMapping: &cp, Cost: c,
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

func infeasible(method Method, exact bool, cl Classification) Solution {
	return Solution{Method: method, Exact: exact, Feasible: false, Classification: cl}
}

func solvePipeline(pr Problem, opts Options) (Solution, error) {
	p := *pr.Pipeline
	pl := pr.Platform
	cl, err := Classify(pr)
	if err != nil {
		return Solution{}, err
	}
	if pl.IsHomogeneous() {
		return solvePipelineHom(pr, p, cl)
	}
	if pr.AllowDataParallel {
		return solvePipelineHetDP(pr, p, cl, opts), nil
	}
	return solvePipelineHetNoDP(pr, p, cl, opts)
}

func solvePipelineHom(pr Problem, p workflow.Pipeline, cl Classification) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinPeriod:
		res, err := pipealgo.HomPeriod(p, pl)
		if err != nil {
			return Solution{}, err
		}
		return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
	case MinLatency:
		if !pr.AllowDataParallel {
			res, err := pipealgo.HomLatencyNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		res, err := pipealgo.HomLatencyDP(p, pl)
		if err != nil {
			return Solution{}, err
		}
		return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	case LatencyUnderPeriod:
		if !pr.AllowDataParallel {
			// Corollary 1: every mapping has latency W/s; replicating
			// everything reaches the minimum period.
			res, err := pipealgo.HomBiCriteriaNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			if numeric.Greater(res.Cost.Period, pr.Bound) {
				return infeasible(MethodClosedForm, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		res, ok, err := pipealgo.HomLatencyUnderPeriodDP(p, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	default: // PeriodUnderLatency
		if !pr.AllowDataParallel {
			res, err := pipealgo.HomBiCriteriaNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			if numeric.Greater(res.Cost.Latency, pr.Bound) {
				return infeasible(MethodClosedForm, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
		}
		res, ok, err := pipealgo.HomPeriodUnderLatencyDP(p, pl, pr.Bound)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodDP, true, cl), nil
		}
		return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
	}
}

func solvePipelineHetNoDP(pr Problem, p workflow.Pipeline, cl Classification, opts Options) (Solution, error) {
	pl := pr.Platform
	switch pr.Objective {
	case MinLatency:
		res, err := pipealgo.HetLatencyNoDP(p, pl)
		if err != nil {
			return Solution{}, err
		}
		return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
	case MinPeriod:
		if p.IsHomogeneous() {
			res, err := pipealgo.HetHomPipelinePeriodNoDP(p, pl)
			if err != nil {
				return Solution{}, err
			}
			return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
		}
		return solvePipelineHard(pr, p, cl, opts), nil
	case LatencyUnderPeriod:
		if p.IsHomogeneous() {
			res, ok, err := pipealgo.HetHomPipelineLatencyUnderPeriodNoDP(p, pl, pr.Bound)
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodBinarySearchDP, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
		}
		return solvePipelineHard(pr, p, cl, opts), nil
	default: // PeriodUnderLatency
		if p.IsHomogeneous() {
			res, ok, err := pipealgo.HetHomPipelinePeriodUnderLatencyNoDP(p, pl, pr.Bound)
			if err != nil {
				return Solution{}, err
			}
			if !ok {
				return infeasible(MethodBinarySearchDP, true, cl), nil
			}
			return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
		}
		return solvePipelineHard(pr, p, cl, opts), nil
	}
}

func solvePipelineHetDP(pr Problem, p workflow.Pipeline, cl Classification, opts Options) Solution {
	return solvePipelineHard(pr, p, cl, opts)
}

// solvePipelineHard handles the NP-hard pipeline cells: exact exhaustive
// search when the platform is small enough, polynomial heuristics
// otherwise.
func solvePipelineHard(pr Problem, p workflow.Pipeline, cl Classification, opts Options) Solution {
	pl := pr.Platform
	dp := pr.AllowDataParallel
	if pl.Processors() <= opts.MaxExhaustivePipelineProcs {
		var res exhaustive.PipelineResult
		var ok bool
		switch pr.Objective {
		case MinPeriod:
			res, ok = exhaustive.PipelinePeriod(p, pl, dp)
		case MinLatency:
			res, ok = exhaustive.PipelineLatency(p, pl, dp)
		case LatencyUnderPeriod:
			res, ok = exhaustive.PipelineLatencyUnderPeriod(p, pl, dp, pr.Bound)
		default:
			res, ok = exhaustive.PipelinePeriodUnderLatency(p, pl, dp, pr.Bound)
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl)
		}
		return pipeSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl)
	}
	// Heuristic path: gather candidate mappings and pick the best that
	// meets the bound (if any).
	var maps []mapping.PipelineMapping
	var costs []mapping.Cost
	add := func(m mapping.PipelineMapping, c mapping.Cost, err error) {
		if err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	if dp {
		m, c, err := heuristics.HetPipelineWithDP(p, pl, pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency)
		add(m, c, err)
		m, c, err = heuristics.HetPipelineWithDP(p, pl, false)
		add(m, c, err)
	}
	m, c, err := heuristics.HetPipelinePeriodNoDP(p, pl)
	add(m, c, err)
	{
		res, err := pipealgo.HetLatencyNoDP(p, pl)
		add(res.Mapping, res.Cost, err)
	}
	idx, okBest := pickBestIndex(costs, pr)
	if !okBest {
		return infeasible(MethodHeuristic, false, cl)
	}
	return pipeSolution(maps[idx], costs[idx], MethodHeuristic, false, cl)
}

// pickBestIndex selects the candidate cost minimizing the requested
// objective among those meeting the bound.
func pickBestIndex(costs []mapping.Cost, pr Problem) (int, bool) {
	best := -1
	for i, c := range costs {
		switch pr.Objective {
		case LatencyUnderPeriod:
			if numeric.Greater(c.Period, pr.Bound) {
				continue
			}
		case PeriodUnderLatency:
			if numeric.Greater(c.Latency, pr.Bound) {
				continue
			}
		}
		if best < 0 || numeric.Less(objectiveValue(c, pr.Objective), objectiveValue(costs[best], pr.Objective)) {
			best = i
		}
	}
	return best, best >= 0
}

func objectiveValue(c mapping.Cost, o Objective) float64 {
	if o == MinPeriod || o == PeriodUnderLatency {
		return c.Period
	}
	return c.Latency
}
