package core

import (
	"context"

	"repliflow/internal/exhaustive"
	"repliflow/internal/heuristics"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/pipealgo"
	"repliflow/internal/workflow"
)

// pipeSolution wraps a pipeline mapping into a Solution.
func pipeSolution(m mapping.PipelineMapping, c mapping.Cost, method Method, exact bool, cl Classification) Solution {
	cp := m
	return Solution{
		PipelineMapping: &cp, Cost: c,
		Method: method, Exact: exact, Feasible: true, Classification: cl,
	}
}

func infeasible(method Method, exact bool, cl Classification) Solution {
	return Solution{Method: method, Exact: exact, Feasible: false, Classification: cl}
}

// registerPipelineSolvers populates the registry with the pipeline column
// of Table 1. Cells whose algorithm ignores an axis (e.g. Theorem 1 works
// for any graph homogeneity) are registered once per concrete key so the
// registry stays total over the cross product.
func init() {
	kind := workflow.KindPipeline
	bools := []bool{false, true}

	registerKind(KindSpec{
		Kind:             kind,
		Name:             kind.String(),
		HasGraph:         func(pr Problem) bool { return pr.Pipeline != nil },
		ValidateGraph:    func(pr Problem) error { return pr.Pipeline.Validate() },
		GraphHomogeneous: func(pr Problem) bool { return pr.Pipeline.IsHomogeneous() },
		DataParallel:     true,
		Classify:         classifyLegacy,
		ExactlySolvable: func(pr Problem, opts Options) bool {
			return pr.Platform.Processors() <= opts.MaxExhaustivePipelineProcs
		},
		// Preparable mirrors preparePipelineHard's gate: only the in-limit
		// exhaustive path shares state worth preparing.
		Preparable: func(pr Problem, opts Options) bool {
			return pr.Platform.Processors() <= opts.MaxExhaustivePipelineProcs
		},
		ParallelWorthwhile: func(pr Problem) bool {
			return pr.Pipeline.Stages()<<pr.Platform.Processors() >= parMinPipelineStates
		},
		CandidatePeriods: pipelineCandidatePeriods,
		Anytime:          solvePipelineAnytime,
		SeedMix: func(pr Problem, mix func(float64)) {
			for _, w := range pr.Pipeline.Weights {
				mix(w)
			}
		},
		AppendFingerprint: func(pr Problem, b []byte) []byte {
			return fpFloats(append(b, 'P'), pr.Pipeline.Weights)
		},
	})

	// Homogeneous platforms: every cell is polynomial (Theorems 1-4,
	// Corollary 1).
	for _, gh := range bools {
		for _, dp := range bools {
			register(CellKey{kind, true, gh, dp, MinPeriod},
				SolverEntry{MethodClosedForm, true, "Theorem 1", solvePipeHomPeriod, nil})
		}
		register(CellKey{kind, true, gh, false, MinLatency},
			SolverEntry{MethodClosedForm, true, "Theorem 2", solvePipeHomLatencyNoDP, nil})
		register(CellKey{kind, true, gh, false, LatencyUnderPeriod},
			SolverEntry{MethodClosedForm, true, "Corollary 1", solvePipeHomBiCriteriaNoDP, nil})
		register(CellKey{kind, true, gh, false, PeriodUnderLatency},
			SolverEntry{MethodClosedForm, true, "Corollary 1", solvePipeHomBiCriteriaNoDP, nil})
		register(CellKey{kind, true, gh, true, MinLatency},
			SolverEntry{MethodDP, true, "Theorem 3", solvePipeHomLatencyDP, nil})
		register(CellKey{kind, true, gh, true, LatencyUnderPeriod},
			SolverEntry{MethodDP, true, "Theorem 4", solvePipeHomLatencyUnderPeriodDP, nil})
		register(CellKey{kind, true, gh, true, PeriodUnderLatency},
			SolverEntry{MethodDP, true, "Theorem 4", solvePipeHomPeriodUnderLatencyDP, nil})
	}

	// Heterogeneous platforms without data-parallelism: latency is always
	// polynomial (Theorem 6); period-type objectives are polynomial for
	// homogeneous pipelines (Theorems 7-8) and NP-hard otherwise
	// (Theorem 9).
	for _, gh := range bools {
		register(CellKey{kind, false, gh, false, MinLatency},
			SolverEntry{MethodClosedForm, true, "Theorem 6", solvePipeHetLatencyNoDP, nil})
	}
	register(CellKey{kind, false, true, false, MinPeriod},
		SolverEntry{MethodBinarySearchDP, true, "Theorem 7", solvePipeHetHomPeriodNoDP, nil})
	register(CellKey{kind, false, true, false, LatencyUnderPeriod},
		SolverEntry{MethodBinarySearchDP, true, "Theorem 8", solvePipeHetHomLatencyUnderPeriodNoDP, nil})
	register(CellKey{kind, false, true, false, PeriodUnderLatency},
		SolverEntry{MethodBinarySearchDP, true, "Theorem 8", solvePipeHetHomPeriodUnderLatencyNoDP, nil})
	for _, obj := range []Objective{MinPeriod, LatencyUnderPeriod, PeriodUnderLatency} {
		register(CellKey{kind, false, false, false, obj},
			SolverEntry{MethodExhaustive, true, "Theorem 9", solvePipelineHard, preparePipelineHard})
	}

	// Data-parallelism on heterogeneous platforms is NP-hard across the
	// board (Theorem 5 covers homogeneous pipelines; heterogeneous ones
	// inherit the hardness).
	for _, gh := range bools {
		for _, obj := range []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency} {
			register(CellKey{kind, false, gh, true, obj},
				SolverEntry{MethodExhaustive, true, "Theorem 5", solvePipelineHard, preparePipelineHard})
		}
	}
}

// --- Polynomial cells (homogeneous platform) -------------------------------

func solvePipeHomPeriod(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := pipealgo.HomPeriod(*pr.Pipeline, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, classificationOf(pr)), nil
}

func solvePipeHomLatencyNoDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := pipealgo.HomLatencyNoDP(*pr.Pipeline, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, classificationOf(pr)), nil
}

// solvePipeHomBiCriteriaNoDP handles Corollary 1: without data-parallelism
// every mapping has latency W/s, so replicating everything reaches the
// minimum period; the bound only decides feasibility.
func solvePipeHomBiCriteriaNoDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	cl := classificationOf(pr)
	res, err := pipealgo.HomBiCriteriaNoDP(*pr.Pipeline, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	bounded := res.Cost.Period
	if pr.Objective == PeriodUnderLatency {
		bounded = res.Cost.Latency
	}
	if numeric.Greater(bounded, pr.Bound) {
		return infeasible(MethodClosedForm, true, cl), nil
	}
	return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, cl), nil
}

func solvePipeHomLatencyDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := pipealgo.HomLatencyDP(*pr.Pipeline, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return pipeSolution(res.Mapping, res.Cost, MethodDP, true, classificationOf(pr)), nil
}

func solvePipeHomLatencyUnderPeriodDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	cl := classificationOf(pr)
	res, ok, err := pipealgo.HomLatencyUnderPeriodDP(*pr.Pipeline, pr.Platform, pr.Bound)
	if err != nil {
		return Solution{}, err
	}
	if !ok {
		return infeasible(MethodDP, true, cl), nil
	}
	return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
}

func solvePipeHomPeriodUnderLatencyDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	cl := classificationOf(pr)
	res, ok, err := pipealgo.HomPeriodUnderLatencyDP(*pr.Pipeline, pr.Platform, pr.Bound)
	if err != nil {
		return Solution{}, err
	}
	if !ok {
		return infeasible(MethodDP, true, cl), nil
	}
	return pipeSolution(res.Mapping, res.Cost, MethodDP, true, cl), nil
}

// --- Polynomial cells (heterogeneous platform, no data-parallelism) --------

func solvePipeHetLatencyNoDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := pipealgo.HetLatencyNoDP(*pr.Pipeline, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return pipeSolution(res.Mapping, res.Cost, MethodClosedForm, true, classificationOf(pr)), nil
}

func solvePipeHetHomPeriodNoDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	res, err := pipealgo.HetHomPipelinePeriodNoDP(*pr.Pipeline, pr.Platform)
	if err != nil {
		return Solution{}, err
	}
	return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, classificationOf(pr)), nil
}

func solvePipeHetHomLatencyUnderPeriodNoDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	cl := classificationOf(pr)
	res, ok, err := pipealgo.HetHomPipelineLatencyUnderPeriodNoDP(*pr.Pipeline, pr.Platform, pr.Bound)
	if err != nil {
		return Solution{}, err
	}
	if !ok {
		return infeasible(MethodBinarySearchDP, true, cl), nil
	}
	return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
}

func solvePipeHetHomPeriodUnderLatencyNoDP(_ context.Context, pr Problem, _ Options) (Solution, error) {
	cl := classificationOf(pr)
	res, ok, err := pipealgo.HetHomPipelinePeriodUnderLatencyNoDP(*pr.Pipeline, pr.Platform, pr.Bound)
	if err != nil {
		return Solution{}, err
	}
	if !ok {
		return infeasible(MethodBinarySearchDP, true, cl), nil
	}
	return pipeSolution(res.Mapping, res.Cost, MethodBinarySearchDP, true, cl), nil
}

// --- NP-hard cells ---------------------------------------------------------

// solvePipelineHard handles the NP-hard pipeline cells: exact exhaustive
// search (with cancellation checkpoints) when the platform is small enough,
// polynomial heuristics otherwise.
func solvePipelineHard(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	pl := pr.Platform
	cl := classificationOf(pr)
	if pl.Processors() <= opts.MaxExhaustivePipelineProcs {
		res, ok, err := exhaustivePipeline(ctx, pr, searchParallelism(opts, pr))
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return pipeSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl), nil
	}
	// Heuristic path: gather candidate mappings and pick the best that
	// meets the bound (if any).
	maps, costs := pipelineHeuristicCandidates(pr)
	idx, okBest := pickBestIndex(costs, pr)
	if !okBest {
		return infeasible(MethodHeuristic, false, cl), nil
	}
	return pipeSolution(maps[idx], costs[idx], MethodHeuristic, false, cl), nil
}

// exhaustivePipeline runs the exact exponential search matching pr's
// objective — the single dispatch shared by the unbudgeted exact path
// and the anytime portfolio's exact member. par is the resolved worker
// count of the partitioned search (<= 1 serial); it never changes the
// result, only the schedule.
func exhaustivePipeline(ctx context.Context, pr Problem, par int) (exhaustive.PipelineResult, bool, error) {
	pp := exhaustive.NewPipelinePrepared(*pr.Pipeline, pr.Platform, pr.AllowDataParallel)
	pp.SetParallelism(par)
	return preparedPipelineDispatch(ctx, pp, pr)
}

// preparedPipelineDispatch is exhaustivePipeline on a shared prepared
// solver: same dispatch, same results, none of the per-solve setup.
func preparedPipelineDispatch(ctx context.Context, pp *exhaustive.PipelinePrepared, pr Problem) (exhaustive.PipelineResult, bool, error) {
	switch pr.Objective {
	case MinPeriod:
		return pp.Period(ctx)
	case MinLatency:
		return pp.Latency(ctx)
	case LatencyUnderPeriod:
		return pp.LatencyUnderPeriod(ctx, pr.Bound)
	default:
		return pp.PeriodUnderLatency(ctx, pr.Bound)
	}
}

// preparePipelineHard is the registry Prepare capability of the NP-hard
// pipeline cells: within the exhaustive limits it shares one
// exhaustive.PipelinePrepared — platform tables, epoch-reset DP arrays,
// candidate periods, per-bound memo — across every solve of the family,
// byte-identical to solvePipelineHard. Outside the limits it returns nil
// (the heuristic path has no per-solve setup worth sharing).
func preparePipelineHard(pr Problem, opts Options) *PreparedCell {
	if pr.Platform.Processors() > opts.MaxExhaustivePipelineProcs {
		return nil
	}
	pp := exhaustive.NewPipelinePrepared(*pr.Pipeline, pr.Platform, pr.AllowDataParallel)
	pp.SetParallelism(searchParallelism(opts, pr))
	solve := func(ctx context.Context, pr Problem) (Solution, error) {
		res, ok, err := preparedPipelineDispatch(ctx, pp, pr)
		if err != nil {
			return Solution{}, err
		}
		cl := classificationOf(pr)
		if !ok {
			return infeasible(MethodExhaustive, true, cl), nil
		}
		return pipeSolution(res.Mapping, res.Cost, MethodExhaustive, true, cl), nil
	}
	return &PreparedCell{Solve: solve, SetParallelism: pp.SetParallelism}
}

// pipelineHeuristicCandidates returns the polynomial heuristic mappings
// of an NP-hard pipeline instance (with their costs, aligned by index).
// It is the candidate pool of both the oversized-instance heuristic path
// and the anytime portfolio's seeds.
func pipelineHeuristicCandidates(pr Problem) ([]mapping.PipelineMapping, []mapping.Cost) {
	p, pl := *pr.Pipeline, pr.Platform
	var maps []mapping.PipelineMapping
	var costs []mapping.Cost
	add := func(m mapping.PipelineMapping, c mapping.Cost, err error) {
		if err == nil {
			maps = append(maps, m)
			costs = append(costs, c)
		}
	}
	if pr.AllowDataParallel {
		m, c, err := heuristics.HetPipelineWithDP(p, pl, pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency)
		add(m, c, err)
		m, c, err = heuristics.HetPipelineWithDP(p, pl, false)
		add(m, c, err)
	}
	m, c, err := heuristics.HetPipelinePeriodNoDP(p, pl)
	add(m, c, err)
	{
		res, err := pipealgo.HetLatencyNoDP(p, pl)
		add(res.Mapping, res.Cost, err)
	}
	return maps, costs
}

// pickBestIndex selects the candidate cost minimizing the requested
// objective among those meeting the bound.
func pickBestIndex(costs []mapping.Cost, pr Problem) (int, bool) {
	best := -1
	for i, c := range costs {
		switch pr.Objective {
		case LatencyUnderPeriod:
			if numeric.Greater(c.Period, pr.Bound) {
				continue
			}
		case PeriodUnderLatency:
			if numeric.Greater(c.Latency, pr.Bound) {
				continue
			}
		}
		if best < 0 || numeric.Less(objectiveValue(c, pr.Objective), objectiveValue(costs[best], pr.Objective)) {
			best = i
		}
	}
	return best, best >= 0
}

func objectiveValue(c mapping.Cost, o Objective) float64 {
	if o == MinPeriod || o == PeriodUnderLatency {
		return c.Period
	}
	return c.Latency
}
