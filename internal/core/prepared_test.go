package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// randomHardishProblem returns a random instance of any of the six graph
// kinds; most draws land on cells with the prepared capability (NP-hard
// legacy cells, SP decompositions, communication-aware cells), the rest
// exercise the polynomial fallback inside PreparedSolver.Solve.
func randomHardishProblem(rng *rand.Rand) Problem {
	pr := Problem{AllowDataParallel: rng.Intn(2) == 0}
	procs := 1 + rng.Intn(4)
	if rng.Intn(3) == 0 {
		pr.Platform = platform.Homogeneous(procs, float64(1+rng.Intn(3)))
	} else {
		pr.Platform = platform.Random(rng, procs, 4)
	}
	switch rng.Intn(6) {
	case 0:
		g := workflow.RandomPipeline(rng, 1+rng.Intn(5), 9)
		pr.Pipeline = &g
	case 1:
		g := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pr.Fork = &g
	case 2:
		g := workflow.RandomForkJoin(rng, 1+rng.Intn(2), 9)
		pr.ForkJoin = &g
	case 3:
		g := workflow.RandomSP(rng, 1+rng.Intn(6), 9, 4, 3)
		pr.SP = &g
		pr.AllowDataParallel = false
	case 4:
		n := 1 + rng.Intn(5)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = float64(1 + rng.Intn(9))
		}
		data := make([]float64, n+1)
		for i := range data {
			data[i] = float64(rng.Intn(5))
		}
		p := fullmodel.NewPipeline(ws, data)
		pr.CommPipeline = &p
		pr.Bandwidth = &fullmodel.Bandwidth{Uniform: float64(1 + rng.Intn(4))}
		pr.AllowDataParallel = false
	default:
		leaves := rng.Intn(4)
		f := fullmodel.Fork{
			Root: float64(1 + rng.Intn(9)), In: float64(rng.Intn(3)), Out0: float64(rng.Intn(3)),
			Weights: make([]float64, leaves), Outs: make([]float64, leaves),
		}
		for i := range f.Weights {
			f.Weights[i] = float64(1 + rng.Intn(9))
			f.Outs[i] = float64(rng.Intn(3))
		}
		pr.CommFork = &f
		pr.Bandwidth = &fullmodel.Bandwidth{Uniform: float64(1 + rng.Intn(4))}
		pr.AllowDataParallel = false
	}
	return pr
}

// TestPreparedSolverMatchesSolveContext is the core-level byte-identity
// corpus: for every objective (bounded and unbounded), a prepared solver
// answering a shuffled sequence of solves must return exactly what
// SolveContext returns on the same problem.
func TestPreparedSolverMatchesSolveContext(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ctx := context.Background()
	prepared := 0
	for trial := 0; trial < 60; trial++ {
		pr := randomHardishProblem(rng)
		ps, ok := Prepare(pr, Options{})
		if !ok {
			// No prepared capability for this instance (every registered
			// cell polynomial): nothing to compare.
			continue
		}
		prepared++
		type solveCase struct {
			obj   Objective
			bound float64
		}
		cases := []solveCase{
			{MinPeriod, 0},
			{MinLatency, 0},
			{LatencyUnderPeriod, float64(1+rng.Intn(6)) / 2},
			{PeriodUnderLatency, float64(1+rng.Intn(8)) / 2},
		}
		rng.Shuffle(len(cases), func(i, j int) { cases[i], cases[j] = cases[j], cases[i] })
		// Solve each case twice: the repeat hits the prepared memos.
		cases = append(cases, cases...)
		for _, c := range cases {
			got, err := ps.Solve(ctx, c.obj, c.bound)
			if err != nil {
				t.Fatal(err)
			}
			sub := pr
			sub.Objective = c.obj
			sub.Bound = c.bound
			want, err := SolveContext(ctx, sub, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v bound=%g: prepared solve diverges\n got %+v\nwant %+v",
					trial, c.obj, c.bound, got, want)
			}
		}
	}
	if prepared < 10 {
		t.Fatalf("only %d/60 trials exercised the prepared path; corpus too weak", prepared)
	}
}

// TestPrepareRefusals: preparation must not engage where its contract
// cannot hold.
func TestPrepareRefusals(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	pipe := workflow.RandomPipeline(rng, 4, 9)
	hard := Problem{Pipeline: &pipe, Platform: platform.Random(rng, 3, 4), AllowDataParallel: true}

	if _, ok := Prepare(hard, Options{AnytimeBudget: time.Millisecond}); ok {
		t.Error("Prepare accepted an anytime budget; portfolio results are time-dependent")
	}
	if _, ok := Prepare(Problem{}, Options{}); ok {
		t.Error("Prepare accepted an invalid problem")
	}
	big := hard
	big.Platform = platform.Random(rng, 12, 4)
	if _, ok := Prepare(big, Options{}); ok {
		t.Error("Prepare accepted an instance beyond the exhaustive limits (heuristic path)")
	}
	poly := hard
	poly.AllowDataParallel = false
	poly.Platform = platform.Homogeneous(3, 2)
	if _, ok := Prepare(poly, Options{}); ok {
		t.Error("Prepare accepted an all-polynomial instance; there is nothing to share")
	}
	if _, ok := Prepare(hard, Options{}); !ok {
		t.Error("Prepare refused a small NP-hard instance it should accept")
	}
}

// TestPreparedSolverRejectsInvalidBound: the prepared fast path must
// fail on a non-positive bound exactly like SolveContext — same error
// kind, never a silent "infeasible".
func TestPreparedSolverRejectsInvalidBound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pipe := workflow.RandomPipeline(rng, 4, 9)
	pr := Problem{Pipeline: &pipe, Platform: platform.Random(rng, 3, 4), AllowDataParallel: true}
	ps, ok := Prepare(pr, Options{})
	if !ok {
		t.Fatal("Prepare refused a small NP-hard instance")
	}
	for _, bound := range []float64{0, -1} {
		_, err := ps.Solve(context.Background(), LatencyUnderPeriod, bound)
		if ErrKindOf(err) != ErrKindInvalidInstance {
			t.Errorf("bound %g: prepared Solve err = %v, want ErrKindInvalidInstance", bound, err)
		}
		sub := pr
		sub.Objective = LatencyUnderPeriod
		sub.Bound = bound
		if _, werr := SolveContext(context.Background(), sub, Options{}); ErrKindOf(werr) != ErrKindOf(err) {
			t.Errorf("bound %g: prepared err kind %v != SolveContext err kind %v", bound, ErrKindOf(err), ErrKindOf(werr))
		}
	}
}
