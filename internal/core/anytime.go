package core

import (
	"context"
	"errors"
	"time"

	"repliflow/internal/anytime"
	"repliflow/internal/heuristics"
)

// This file wires the internal/anytime portfolio into the registry.
// Every NP-hard cell of a kind whose spec advertises the Anytime
// capability dispatches to it when Options.AnytimeBudget is set (see
// LookupAnytimeSolver). The portfolio is seeded with the exact same
// heuristic candidates the legacy fallback path uses, so a budgeted
// solve can never return a worse objective than an unbudgeted heuristic
// one.

// anytimeSpec projects a problem's objective onto the portfolio's
// cost-level spec.
func anytimeSpec(pr Problem) anytime.Spec {
	spec := anytime.Spec{AllowDP: pr.AllowDataParallel}
	switch pr.Objective {
	case MinPeriod:
		spec.MinimizePeriod = true
	case MinLatency:
	case LatencyUnderPeriod:
		spec.PeriodBound = pr.Bound
	default: // PeriodUnderLatency
		spec.MinimizePeriod = true
		spec.LatencyBound = pr.Bound
	}
	return spec
}

// anytimeSeedBase derives the portfolio RNG seed from the instance so
// repeated solves of one instance explore identical member streams. The
// graph data enters through the kind's SeedMix capability.
func anytimeSeedBase(pr Problem) int64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	mix := func(v float64) {
		bits := uint64(int64(v * 4096))
		h = (h ^ bits) * 1099511628211
	}
	if spec := specOf(pr); spec != nil {
		spec.SeedMix(pr, mix)
	}
	for _, s := range pr.Platform.Speeds {
		mix(s)
	}
	return int64(h >> 1)
}

// anytimeSolution converts a portfolio result into a Solution.
func anytimeSolution(res anytime.Result, cl Classification) Solution {
	return Solution{
		PipelineMapping: res.Pipeline,
		ForkMapping:     res.Fork,
		ForkJoinMapping: res.ForkJoin,
		Cost:            res.Cost,
		Method:          MethodAnytime,
		Exact:           res.Optimal,
		Feasible:        res.Feasible,
		Classification:  cl,
		Anytime:         true,
		Gap:             res.Gap,
		LowerBound:      res.LowerBound,
		Iterations:      res.Iterations,
	}
}

// finishAnytime applies the anytime error contract after a portfolio
// run: a cancelled caller aborts (the result must not be trusted or
// cached), a caller deadline that fired mid-run still returns the
// incumbent — that is the point of anytime solving — unless nothing
// feasible was found.
func finishAnytime(ctx context.Context, res anytime.Result, cl Classification, err error) (Solution, error) {
	if err != nil {
		return Solution{}, err
	}
	if cerr := ctx.Err(); cerr != nil && (errors.Is(cerr, context.Canceled) || !res.Feasible && !res.Optimal) {
		return Solution{}, cerr
	}
	return anytimeSolution(res, cl), nil
}

// anytimeContext bounds ctx by the budget.
func anytimeContext(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, budget)
}

func solvePipelineAnytime(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	p, pl := *pr.Pipeline, pr.Platform
	cl := classificationOf(pr)
	seeds, _ := pipelineHeuristicCandidates(pr)
	cfg := anytime.Config{Seed: anytimeSeedBase(pr)}
	if pl.Processors() <= opts.MaxExhaustivePipelineProcs {
		cfg.Exact = func(ctx context.Context) (anytime.Exact, error) {
			// The portfolio already saturates cores with concurrent
			// members; its exact member stays serial.
			res, ok, err := exhaustivePipeline(ctx, pr, 1)
			if err != nil {
				return anytime.Exact{}, err
			}
			m := res.Mapping
			return anytime.Exact{Pipeline: &m, Cost: res.Cost, Feasible: ok}, nil
		}
	}
	bctx, cancel := anytimeContext(ctx, opts.AnytimeBudget)
	defer cancel()
	res, err := anytime.SolvePipeline(bctx, p, pl, anytimeSpec(pr), seeds, cfg)
	return finishAnytime(ctx, res, cl, err)
}

func solveForkAnytime(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	f, pl := *pr.Fork, pr.Platform
	cl := classificationOf(pr)
	seeds, costs := forkHeuristicCandidates(pr)
	// The legacy path polishes its pick with hill climbing; seed the
	// portfolio with the polished mapping too.
	if idx, ok := pickBestIndex(costs, pr); ok {
		obj := heuristics.ForkMinLatency
		if pr.Objective == MinPeriod || pr.Objective == PeriodUnderLatency {
			obj = heuristics.ForkMinPeriod
		}
		if m, _, err := heuristics.LocalSearchFork(f, pl, seeds[idx], obj); err == nil {
			seeds = append(seeds, m)
		}
	}
	cfg := anytime.Config{Seed: anytimeSeedBase(pr)}
	if f.Leaves()+1 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		cfg.Exact = func(ctx context.Context) (anytime.Exact, error) {
			res, ok, err := exhaustiveFork(ctx, pr, 1)
			if err != nil {
				return anytime.Exact{}, err
			}
			m := res.Mapping
			return anytime.Exact{Fork: &m, Cost: res.Cost, Feasible: ok}, nil
		}
	}
	bctx, cancel := anytimeContext(ctx, opts.AnytimeBudget)
	defer cancel()
	res, err := anytime.SolveFork(bctx, f, pl, anytimeSpec(pr), seeds, cfg)
	return finishAnytime(ctx, res, cl, err)
}

func solveForkJoinAnytime(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	fj, pl := *pr.ForkJoin, pr.Platform
	cl := classificationOf(pr)
	seeds, _ := forkJoinHeuristicCandidates(pr)
	cfg := anytime.Config{Seed: anytimeSeedBase(pr)}
	if fj.Leaves()+2 <= opts.MaxExhaustiveForkStages && pl.Processors() <= opts.MaxExhaustiveForkProcs {
		cfg.Exact = func(ctx context.Context) (anytime.Exact, error) {
			res, ok, err := exhaustiveForkJoin(ctx, pr, 1)
			if err != nil {
				return anytime.Exact{}, err
			}
			m := res.Mapping
			return anytime.Exact{ForkJoin: &m, Cost: res.Cost, Feasible: ok}, nil
		}
	}
	bctx, cancel := anytimeContext(ctx, opts.AnytimeBudget)
	defer cancel()
	res, err := anytime.SolveForkJoin(bctx, fj, pl, anytimeSpec(pr), seeds, cfg)
	return finishAnytime(ctx, res, cl, err)
}
