package core

import (
	"testing"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func pipeProblem(p workflow.Pipeline, pl platform.Platform, dp bool, obj Objective, bound float64) Problem {
	return Problem{Pipeline: &p, Platform: pl, AllowDataParallel: dp, Objective: obj, Bound: bound}
}

func forkProblem(f workflow.Fork, pl platform.Platform, dp bool, obj Objective, bound float64) Problem {
	return Problem{Fork: &f, Platform: pl, AllowDataParallel: dp, Objective: obj, Bound: bound}
}

func forkJoinProblem(fj workflow.ForkJoin, pl platform.Platform, dp bool, obj Objective, bound float64) Problem {
	return Problem{ForkJoin: &fj, Platform: pl, AllowDataParallel: dp, Objective: obj, Bound: bound}
}

func TestProblemValidate(t *testing.T) {
	p := workflow.NewPipeline(1, 2)
	f := workflow.NewFork(1, 2)
	pl := platform.Homogeneous(2, 1)
	if err := pipeProblem(p, pl, false, MinPeriod, 0).Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	// No graph.
	if err := (Problem{Platform: pl}).Validate(); err == nil {
		t.Error("graphless problem accepted")
	}
	// Two graphs.
	twoGraphs := Problem{Pipeline: &p, Fork: &f, Platform: pl}
	if err := twoGraphs.Validate(); err == nil {
		t.Error("two-graph problem accepted")
	}
	// Bounded objective without bound.
	if err := pipeProblem(p, pl, false, LatencyUnderPeriod, 0).Validate(); err == nil {
		t.Error("bounded objective without bound accepted")
	}
	// Bad objective.
	if err := pipeProblem(p, pl, false, Objective(42), 0).Validate(); err == nil {
		t.Error("unknown objective accepted")
	}
	// Bad platform.
	if err := pipeProblem(p, platform.New(), false, MinPeriod, 0).Validate(); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestObjectiveString(t *testing.T) {
	if MinPeriod.String() != "min-period" || !LatencyUnderPeriod.Bounded() || MinLatency.Bounded() {
		t.Fatal("objective helpers broken")
	}
}

// TestClassifyTable1 pins every cell of Table 1 through the classifier.
func TestClassifyTable1(t *testing.T) {
	homPipe := workflow.HomogeneousPipeline(3, 2)
	hetPipe := workflow.NewPipeline(1, 2, 3)
	homFork := workflow.HomogeneousFork(2, 3, 1)
	hetFork := workflow.NewFork(2, 1, 3)
	homPlat := platform.Homogeneous(3, 1)
	hetPlat := platform.New(1, 2, 3)

	cases := []struct {
		name    string
		problem Problem
		want    Complexity
		source  string
	}{
		// Homogeneous platforms, without data-parallelism.
		{"homplat hompipe period", pipeProblem(homPipe, homPlat, false, MinPeriod, 0), PolyStraightforward, "Theorem 1"},
		{"homplat hetpipe period", pipeProblem(hetPipe, homPlat, false, MinPeriod, 0), PolyStraightforward, "Theorem 1"},
		{"homplat hetpipe latency", pipeProblem(hetPipe, homPlat, false, MinLatency, 0), PolyStraightforward, "Theorem 2"},
		{"homplat hetpipe both", pipeProblem(hetPipe, homPlat, false, LatencyUnderPeriod, 5), PolyStraightforward, "Corollary 1"},
		// Homogeneous platforms, with data-parallelism.
		{"homplat hetpipe latency dp", pipeProblem(hetPipe, homPlat, true, MinLatency, 0), PolyDP, "Theorem 3"},
		{"homplat hetpipe both dp", pipeProblem(hetPipe, homPlat, true, PeriodUnderLatency, 9), PolyDP, "Theorem 4"},
		{"homplat hetpipe period dp", pipeProblem(hetPipe, homPlat, true, MinPeriod, 0), PolyStraightforward, "Theorem 1"},
		// Heterogeneous platforms, pipeline.
		{"hetplat pipe latency", pipeProblem(hetPipe, hetPlat, false, MinLatency, 0), PolyStraightforward, "Theorem 6"},
		{"hetplat hompipe period", pipeProblem(homPipe, hetPlat, false, MinPeriod, 0), PolyBinarySearchDP, "Theorem 7"},
		{"hetplat hompipe both", pipeProblem(homPipe, hetPlat, false, LatencyUnderPeriod, 5), PolyBinarySearchDP, "Theorem 8"},
		{"hetplat hetpipe period", pipeProblem(hetPipe, hetPlat, false, MinPeriod, 0), NPHard, "Theorem 9"},
		{"hetplat hompipe period dp", pipeProblem(homPipe, hetPlat, true, MinPeriod, 0), NPHard, "Theorem 5"},
		{"hetplat hompipe latency dp", pipeProblem(homPipe, hetPlat, true, MinLatency, 0), NPHard, "Theorem 5"},
		// Forks on homogeneous platforms.
		{"homplat hetfork period", forkProblem(hetFork, homPlat, false, MinPeriod, 0), PolyStraightforward, "Theorem 10"},
		{"homplat homfork latency", forkProblem(homFork, homPlat, false, MinLatency, 0), PolyDP, "Theorem 11"},
		{"homplat homfork latency dp", forkProblem(homFork, homPlat, true, MinLatency, 0), PolyDP, "Theorem 11"},
		{"homplat hetfork latency", forkProblem(hetFork, homPlat, false, MinLatency, 0), NPHard, "Theorem 12"},
		{"homplat hetfork latency dp", forkProblem(hetFork, homPlat, true, MinLatency, 0), NPHard, "Theorem 12"},
		// Forks on heterogeneous platforms.
		{"hetplat homfork period dp", forkProblem(homFork, hetPlat, true, MinPeriod, 0), NPHard, "Theorem 13"},
		{"hetplat homfork period", forkProblem(homFork, hetPlat, false, MinPeriod, 0), PolyBinarySearchDP, "Theorem 14"},
		{"hetplat homfork latency", forkProblem(homFork, hetPlat, false, MinLatency, 0), PolyBinarySearchDP, "Theorem 14"},
		{"hetplat hetfork period", forkProblem(hetFork, hetPlat, false, MinPeriod, 0), NPHard, "Theorem 15"},
		{"hetplat hetfork latency", forkProblem(hetFork, hetPlat, false, MinLatency, 0), NPHard, "Theorems 12/15"},
	}
	for _, c := range cases {
		got, err := Classify(c.problem)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Complexity != c.want {
			t.Errorf("%s: complexity = %v, want %v", c.name, got.Complexity, c.want)
		}
		if got.Source != c.source {
			t.Errorf("%s: source = %q, want %q", c.name, got.Source, c.source)
		}
	}
}

func TestClassifyForkJoinMatchesFork(t *testing.T) {
	homFJ := workflow.HomogeneousForkJoin(1, 1, 3, 2)
	hetPlat := platform.New(1, 2)
	got, err := Classify(forkJoinProblem(homFJ, hetPlat, false, MinLatency, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Complexity != PolyBinarySearchDP {
		t.Errorf("fork-join classification = %v, want Poly (*)", got.Complexity)
	}
}

func TestComplexityString(t *testing.T) {
	if PolyStraightforward.String() != "Poly (str)" || PolyDP.String() != "Poly (DP)" ||
		PolyBinarySearchDP.String() != "Poly (*)" || NPHard.String() != "NP-hard" {
		t.Fatal("Complexity.String labels diverge from Table 1")
	}
	if NPHard.Polynomial() || !PolyDP.Polynomial() {
		t.Fatal("Polynomial() broken")
	}
}
