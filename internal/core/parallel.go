package core

import "runtime"

// Auto-mode crossover thresholds: sharding a search has a fixed fan-out
// cost (goroutines, per-worker scratch, and for the pipeline DP a
// full-table level sweep instead of the reachable-state recursion), so
// negative Parallelism only parallelizes searches whose serial cost
// dwarfs that overhead. Pipelines qualify once the DP table
// (stages << procs states) reaches parMinPipelineStates; forks and
// fork-joins once both the partition item count and the processor count
// are non-trivial. Explicit positive Parallelism skips the heuristic.
// The values are documented in docs/performance.md; change both together.
const (
	parMinPipelineStates = 4096
	parMinForkItems      = 5
	parMinForkProcs      = 4
)

// searchParallelism resolves Options.Parallelism into the concrete
// worker count of one exhaustive search on pr: explicit counts above 1
// apply as-is, 0/1 stay serial, and negative values (auto) use up to
// -n workers (-1 = GOMAXPROCS) when the instance clears the crossover.
func searchParallelism(opts Options, pr Problem) int {
	par := opts.Parallelism
	if par >= 0 {
		if par <= 1 {
			return 1
		}
		return par
	}
	want := -par
	if par == -1 {
		want = runtime.GOMAXPROCS(0)
	}
	if want < 2 || !parallelWorthwhile(pr) {
		return 1
	}
	return want
}

// parallelWorthwhile is the auto-mode crossover heuristic on a validated
// problem, delegated to the kind's capability. Kinds without a parallel
// search path (no ParallelWorthwhile capability) always stay serial.
func parallelWorthwhile(pr Problem) bool {
	spec := specOf(pr)
	return spec != nil && spec.ParallelWorthwhile != nil && spec.ParallelWorthwhile(pr)
}
