package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repliflow/internal/workflow"
)

// KindSpec is the capability descriptor of one workflow kind. The
// dispatcher used to switch on the closed three-value workflow.Kind enum
// in half a dozen places (validation, cell-key derivation,
// classification, exhaustive limits, the parallel-search crossover, the
// Pareto candidate enumeration, the anytime portfolio, RNG seeding);
// every one of those switches is now a capability lookup on the
// registered spec, so adding a kind means registering one spec plus its
// Table-1-style cells — no dispatcher edits. Capabilities marked
// optional may be nil; the dispatcher then degrades as documented on the
// field.
type KindSpec struct {
	Kind workflow.Kind
	// Name is the stable wire name of the kind (workflow.Kind.String()),
	// used by the instance codec and the HTTP query parameters.
	Name string

	// HasGraph reports whether pr carries this kind's graph field.
	HasGraph func(pr Problem) bool
	// ValidateGraph validates the graph field (HasGraph must hold).
	ValidateGraph func(pr Problem) error
	// GraphHomogeneous is the graph-homogeneity axis of the kind's cells.
	GraphHomogeneous func(pr Problem) bool
	// PlatformHomogeneous overrides the platform-homogeneity axis. Nil
	// uses pr.Platform.IsHomogeneous(); communication-aware kinds use the
	// stricter fully-homogeneous test that includes bandwidths.
	PlatformHomogeneous func(pr Problem) bool

	// DataParallel reports whether the kind models data-parallelism:
	// kinds without it reject AllowDataParallel at validation and
	// enumerate only no-dp cells.
	DataParallel bool
	// NeedsBandwidth reports whether the kind prices communication:
	// Problem.Bandwidth is required for it and rejected for others.
	NeedsBandwidth bool

	// Classify returns the Table 1 classification of one of the kind's
	// cells (k.Kind == Kind).
	Classify func(k CellKey) Classification
	// ExactlySolvable reports whether the in-limit exact path applies to
	// the (validated) instance under normalized opts.
	ExactlySolvable func(pr Problem, opts Options) bool

	// Preparable is the registry-level gate of core.Prepare: it reports
	// whether the kind can produce a prepared solver for the (validated)
	// instance under normalized opts. Nil means no cell of the kind
	// prepares, so Prepare fails fast without probing the cells. It must
	// be truthful in the negative direction only — returning true merely
	// lets Prepare probe the instance's cells, whose Prepare entries stay
	// authoritative.
	Preparable func(pr Problem, opts Options) bool

	// ParallelWorthwhile is the auto-mode crossover of the partitioned
	// exhaustive search. Nil means the kind has no parallel search path,
	// so auto mode always stays serial.
	ParallelWorthwhile func(pr Problem) bool
	// CandidatePeriods enumerates a superset of the achievable period
	// values for the Pareto sweep (ascending, deduplicated). Nil means
	// the kind does not support Pareto sweeps.
	CandidatePeriods func(pr Problem) []float64
	// Anytime is the budget-bounded portfolio solver of the kind's
	// NP-hard cells. Nil means a positive AnytimeBudget falls through to
	// the registered cell solver.
	Anytime SolverFunc
	// SeedMix feeds the instance's graph data into the deterministic
	// portfolio RNG seed.
	SeedMix func(pr Problem, mix func(float64))
	// AppendFingerprint appends the graph structure and weights of the
	// instance to a batch-engine fingerprint. The encoding must be
	// prefix-free across kinds (each implementation leads with a distinct
	// tag byte).
	AppendFingerprint func(pr Problem, b []byte) []byte
}

// kindSpecs is the capability registry, populated at init time by the
// per-kind solver files and immutable after; kindSpecList holds the same
// specs sorted by kind so hot-path iteration (specOf runs on every
// dispatch and fingerprint) never allocates.
var (
	kindSpecs    = map[workflow.Kind]*KindSpec{}
	kindSpecList []*KindSpec
)

// registerKind installs a kind spec, panicking on duplicates or missing
// required capabilities — programming errors caught by any test run.
func registerKind(spec KindSpec) {
	if _, dup := kindSpecs[spec.Kind]; dup {
		panic(fmt.Sprintf("core: duplicate kind registration for %v", spec.Kind))
	}
	switch {
	case spec.Name == "",
		spec.HasGraph == nil,
		spec.ValidateGraph == nil,
		spec.GraphHomogeneous == nil,
		spec.Classify == nil,
		spec.ExactlySolvable == nil,
		spec.SeedMix == nil,
		spec.AppendFingerprint == nil:
		panic(fmt.Sprintf("core: kind %v registered with missing capabilities", spec.Kind))
	}
	cp := spec
	kindSpecs[spec.Kind] = &cp
	kindSpecList = append(kindSpecList, &cp)
	sort.Slice(kindSpecList, func(i, j int) bool { return kindSpecList[i].Kind < kindSpecList[j].Kind })
}

// KindSpecs returns every registered kind spec ordered by kind value. The
// returned slice is a copy; the specs themselves are shared and must not
// be mutated.
func KindSpecs() []*KindSpec {
	return append([]*KindSpec(nil), kindSpecList...)
}

// KindSpecFor returns the capability spec of a kind. Unknown kinds fail
// with ErrKindUnsupportedKind — the structured error every dispatch site
// returns instead of silently defaulting.
func KindSpecFor(kind workflow.Kind) (*KindSpec, error) {
	if s, ok := kindSpecs[kind]; ok {
		return s, nil
	}
	return nil, WithErrKind(ErrKindUnsupportedKind,
		fmt.Errorf("core: unsupported workflow kind %v", kind))
}

// KindByName resolves a wire kind name to its spec. Unknown names fail
// with ErrKindUnsupportedKind.
func KindByName(name string) (*KindSpec, error) {
	for _, s := range KindSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, WithErrKind(ErrKindUnsupportedKind,
		fmt.Errorf("core: unsupported workflow kind %q", name))
}

// specOf returns the spec of a problem's graph kind, or nil when no
// registered kind claims the instance (then validation rejects it).
func specOf(pr Problem) *KindSpec {
	for _, s := range kindSpecList {
		if s.HasGraph(pr) {
			return s
		}
	}
	return nil
}

// AppendGraphFingerprint appends the kind tag, structure and weights of
// the instance's graph to b — the batch-engine fingerprint hook. An
// instance no registered kind claims gets the reserved '?' tag (such
// instances fail validation, so their fingerprints never cache results).
func AppendGraphFingerprint(pr Problem, b []byte) []byte {
	spec := specOf(pr)
	if spec == nil {
		return append(b, '?')
	}
	return spec.AppendFingerprint(pr, b)
}

// fpFloat appends the raw bits of one float64 to a fingerprint, so values
// differing by one ULP stay distinct.
func fpFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// fpFloats appends a length prefix and the raw bits of each value, so
// adjacent variable-length fields can never alias each other.
func fpFloats(b []byte, vs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = fpFloat(b, v)
	}
	return b
}

// fpInt appends a non-negative integer as a uvarint.
func fpInt(b []byte, v int) []byte {
	return binary.AppendUvarint(b, uint64(v))
}
