package core

import (
	"context"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
)

// BatchSolver solves a slice of subproblems under shared options, returning
// solutions aligned by index. The Pareto sweep is parameterized over it so
// a concurrent engine can be injected without core depending on one: the
// serial default solves the slice in order with SolveContext.
type BatchSolver func(ctx context.Context, problems []Problem, opts Options) ([]Solution, error)

// serialBatch is the default BatchSolver: one SolveContext call per
// subproblem, in order.
func serialBatch(ctx context.Context, problems []Problem, opts Options) ([]Solution, error) {
	out := make([]Solution, len(problems))
	for i, pr := range problems {
		sol, err := SolveContext(ctx, pr, opts)
		if err != nil {
			return nil, err
		}
		out[i] = sol
	}
	return out, nil
}

// ParetoFront computes the period/latency trade-off curve of a problem
// instance: the set of non-dominated (period, latency) pairs, each with a
// mapping achieving it, ordered by increasing period. The Objective and
// Bound fields of the problem are ignored.
//
// The sweep runs over the finite set of achievable block-period values, so
// on instances the dispatcher solves exactly the front is exact; points
// obtained through heuristics are upper bounds (Solution.Exact == false).
func ParetoFront(pr Problem, opts Options) ([]Solution, error) {
	return ParetoFrontWith(context.Background(), pr, opts, nil)
}

// ParetoFrontWith is ParetoFront with an explicit context and a pluggable
// batch solver for the candidate-period subproblems (nil = serial). The
// front is a pure function of the instance: any correct BatchSolver —
// serial, concurrent, cached — produces identical output, because the
// candidate subproblems are independent and the dominance filtering below
// is deterministic.
func ParetoFrontWith(ctx context.Context, pr Problem, opts Options, batch BatchSolver) ([]Solution, error) {
	if batch == nil {
		batch = serialBatch
	}
	pr, err := NormalizeSweep(pr)
	if err != nil {
		return nil, err
	}
	opts = opts.Normalized()

	// Solve every candidate-period subproblem up front: they are mutually
	// independent, so a concurrent batch solver can fan them out.
	cands := CandidatePeriods(pr)
	subs := make([]Problem, len(cands))
	for i, k := range cands {
		sub := pr
		sub.Objective = LatencyUnderPeriod
		sub.Bound = k
		subs[i] = sub
	}
	sols, err := batch(ctx, subs, opts)
	if err != nil {
		return nil, err
	}

	// Dominance filtering is a serial walk over the ascending candidates;
	// only the few accepted points pay a tightening solve.
	acc := NewFrontAccumulator()
	tighten := func(latency float64) (Solution, bool) {
		tight := pr
		tight.Objective = PeriodUnderLatency
		tight.Bound = latency
		tsols, err := batch(ctx, []Problem{tight}, opts)
		if err != nil {
			return Solution{}, false
		}
		return tsols[0], true
	}
	var front []Solution
	for _, sol := range sols {
		if point, ok := acc.Offer(sol, tighten); ok {
			front = append(front, point)
		}
	}
	return front, nil
}

// NormalizeSweep canonicalizes an instance for a Pareto sweep: the
// Objective and Bound fields are overridden (the sweep ignores them) and
// the instance is validated. Every sweep entry point — the serial
// ParetoFrontWith and the incremental engine generator — goes through it,
// so they agree byte-for-byte on which instance they are sweeping.
func NormalizeSweep(pr Problem) (Problem, error) {
	if pr.Objective.Bounded() && pr.Bound <= 0 {
		pr.Bound = 1 // neutralize validation; the objective is overridden below
	}
	pr.Objective = MinPeriod
	if err := pr.Validate(); err != nil {
		return Problem{}, err
	}
	return pr, nil
}

// FrontAccumulator is the incremental dominance walk of the Pareto sweep:
// candidate solutions are offered in ascending candidate-period order, and
// each offer is either discarded (infeasible, or dominated by an already
// accepted point) or confirmed as the next front point. Confirmation is
// final — later candidates have larger periods, so they can only extend
// the front, never displace an accepted point. This is what lets a sweep
// deliver points as soon as the prefix of smaller candidates is resolved,
// instead of buffering the whole front.
//
// The zero value is not usable; construct with NewFrontAccumulator. The
// accumulator is not safe for concurrent use: offers are inherently
// ordered.
type FrontAccumulator struct {
	prevLatency float64
}

// NewFrontAccumulator returns an accumulator ready for the first
// (smallest-period) candidate.
func NewFrontAccumulator() *FrontAccumulator {
	return &FrontAccumulator{prevLatency: numeric.Inf}
}

// Offer runs the dominance filter on the next candidate solution in
// ascending-period order. When the candidate joins the front, the
// confirmed point (possibly period-tightened) and true are returned;
// otherwise the candidate is discarded. tighten, when non-nil, re-solves
// the period at the accepted latency level (the PeriodUnderLatency probe
// of the serial walk); its result replaces the candidate only when it is
// feasible and dominates it, so a failing or worse tightening solve never
// degrades the front.
func (a *FrontAccumulator) Offer(sol Solution, tighten func(latency float64) (Solution, bool)) (Solution, bool) {
	if !sol.Feasible || numeric.GreaterEq(sol.Cost.Latency, a.prevLatency) {
		return Solution{}, false
	}
	if tighten != nil {
		if ts, ok := tighten(sol.Cost.Latency); ok && ts.Feasible &&
			numeric.LessEq(ts.Cost.Latency, sol.Cost.Latency) && numeric.LessEq(ts.Cost.Period, sol.Cost.Period) {
			sol = ts
		}
	}
	a.prevLatency = sol.Cost.Latency
	return sol, true
}

// CandidatePeriods returns a superset of the achievable block-period
// values of the instance, ascending and deduplicated, delegated to the
// kind's capability. For homogeneous graphs a closed form keeps the set
// polynomial; otherwise block weights are enumerated over stage subsets
// (fine at exhaustive-search sizes). The optimal period of any mapping is
// one of these values, which is what makes the ParetoFront sweep exact on
// exactly-solved cells. Kinds without the capability return nil (their
// sweep degenerates to the empty front).
func CandidatePeriods(pr Problem) []float64 {
	spec := specOf(pr)
	if spec == nil || spec.CandidatePeriods == nil {
		return nil
	}
	return spec.CandidatePeriods(pr)
}

// pipelineCandidatePeriods is the CandidatePeriods capability of the
// legacy pipeline kind: every contiguous interval weight.
func pipelineCandidatePeriods(pr Problem) []float64 {
	p := *pr.Pipeline
	var weights []float64
	for i := 0; i < p.Stages(); i++ {
		w := 0.0
		for j := i; j < p.Stages(); j++ {
			w += p.Weights[j]
			weights = append(weights, w)
		}
	}
	return periodsFromWeights(weights, pr.Platform)
}

// forkCandidatePeriods is the CandidatePeriods capability of the legacy
// fork kind.
func forkCandidatePeriods(pr Problem) []float64 {
	return periodsFromWeights(forkBlockWeights(pr.Fork.Root, 0, false, pr.Fork.Weights), pr.Platform)
}

// forkJoinCandidatePeriods is the CandidatePeriods capability of the
// legacy fork-join kind.
func forkJoinCandidatePeriods(pr Problem) []float64 {
	return periodsFromWeights(forkBlockWeights(pr.ForkJoin.Root, pr.ForkJoin.Join, true, pr.ForkJoin.Weights), pr.Platform)
}

// forkBlockWeights lists the total weights a fork (or fork-join) block can
// take: any subset sum of the leaves, optionally plus the root and/or join
// weight. Homogeneous leaves collapse subsets to counts; heterogeneous
// leaves enumerate subsets (2^n).
func forkBlockWeights(root, join float64, hasJoin bool, leaves []float64) []float64 {
	var sums []float64
	hom := true
	for _, w := range leaves[min(1, len(leaves)):] {
		if !numeric.Eq(w, leaves[0]) {
			hom = false
			break
		}
	}
	if hom {
		s := 0.0
		sums = append(sums, 0)
		for range leaves {
			if len(leaves) > 0 {
				s += leaves[0]
			}
			sums = append(sums, s)
		}
	} else {
		sums = append(sums, 0)
		for _, w := range leaves {
			for _, s := range append([]float64(nil), sums...) {
				sums = append(sums, s+w)
			}
		}
		sums = numeric.DedupSorted(sums)
	}
	var weights []float64
	for _, s := range sums {
		if s > 0 {
			weights = append(weights, s)
		}
		weights = append(weights, s+root)
		if hasJoin {
			if s > 0 {
				weights = append(weights, s+join)
			}
			weights = append(weights, s+root+join)
		}
	}
	return weights
}

// periodsFromWeights expands block weights into period values over every
// replication count and minimum speed (and speed sums for data-parallel
// groups), deduplicated and ascending.
func periodsFromWeights(weights []float64, pl platform.Platform) []float64 {
	speeds := numeric.DedupSorted(append([]float64(nil), pl.Speeds...))
	p := pl.Processors()
	var cands []float64
	for _, w := range weights {
		for _, s := range speeds {
			for k := 1; k <= p; k++ {
				cands = append(cands, w/(float64(k)*s))
			}
		}
	}
	// Data-parallel groups divide by speed sums; enumerate sums of sorted
	// prefixes and, when small, all subset sums.
	sums := subsetSpeedSums(pl)
	for _, w := range weights {
		for _, s := range sums {
			cands = append(cands, w/s)
		}
	}
	return numeric.DedupSorted(cands)
}

// subsetSpeedSums returns the distinct subset speed sums when 2^p is small
// and the prefix sums of the speed-sorted processors otherwise (a superset
// is not required for correctness of the sweep — extra candidates only add
// work, missing ones only coarsen the front between exact points).
func subsetSpeedSums(pl platform.Platform) []float64 {
	p := pl.Processors()
	if p <= 12 {
		sums := []float64{}
		acc := []float64{0}
		for _, s := range pl.Speeds {
			for _, a := range append([]float64(nil), acc...) {
				acc = append(acc, a+s)
			}
			acc = numeric.DedupSorted(acc)
		}
		for _, a := range acc {
			if a > 0 {
				sums = append(sums, a)
			}
		}
		return sums
	}
	var sums []float64
	total := 0.0
	for _, idx := range pl.SortedBySpeed() {
		total += pl.Speeds[idx]
		sums = append(sums, total)
	}
	return numeric.DedupSorted(sums)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FrontIsMonotone reports whether a front is strictly decreasing in
// latency and strictly increasing in period — the defining property of a
// Pareto front (exported for tests and tooling).
func FrontIsMonotone(front []Solution) bool {
	for i := 1; i < len(front); i++ {
		if !numeric.Less(front[i-1].Cost.Period, front[i].Cost.Period) {
			return false
		}
		if !numeric.Greater(front[i-1].Cost.Latency, front[i].Cost.Latency) {
			return false
		}
	}
	return true
}
