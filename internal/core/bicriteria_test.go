package core

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestBiCriteriaDispatchAllCells drives both bounded objectives through
// every (graph, platform, model) combination and cross-checks exact
// results against exhaustive search.
func TestBiCriteriaDispatchAllCells(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	graphs := []struct {
		name string
		mk   func() Problem
	}{
		{"hom pipeline", func() Problem {
			p := workflow.HomogeneousPipeline(1+rng.Intn(3), float64(1+rng.Intn(5)))
			return Problem{Pipeline: &p}
		}},
		{"het pipeline", func() Problem {
			p := workflow.NewPipeline(float64(1+rng.Intn(5)), float64(6+rng.Intn(5)))
			return Problem{Pipeline: &p}
		}},
		{"hom fork", func() Problem {
			f := workflow.HomogeneousFork(float64(1+rng.Intn(5)), rng.Intn(3), float64(1+rng.Intn(5)))
			return Problem{Fork: &f}
		}},
		{"het fork", func() Problem {
			f := workflow.NewFork(float64(1+rng.Intn(5)), float64(1+rng.Intn(4)), float64(5+rng.Intn(4)))
			return Problem{Fork: &f}
		}},
		{"hom fork-join", func() Problem {
			fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(5)), float64(1+rng.Intn(5)), rng.Intn(3), float64(1+rng.Intn(5)))
			return Problem{ForkJoin: &fj}
		}},
		{"het fork-join", func() Problem {
			fj := workflow.NewForkJoin(float64(1+rng.Intn(5)), float64(1+rng.Intn(5)), float64(1+rng.Intn(4)), float64(5+rng.Intn(4)))
			return Problem{ForkJoin: &fj}
		}},
	}
	platforms := []platform.Platform{
		platform.Homogeneous(3, 1),
		platform.New(3, 2, 1),
	}
	for trial := 0; trial < 4; trial++ {
		for _, g := range graphs {
			for _, pl := range platforms {
				for _, dp := range []bool{false, true} {
					pr := g.mk()
					pr.Platform = pl
					pr.AllowDataParallel = dp

					// Find the mono-criterion optima first to set bounds.
					pr.Objective = MinPeriod
					solP, err := Solve(pr, Options{})
					if err != nil {
						t.Fatalf("%s: %v", g.name, err)
					}
					pr.Objective = MinLatency
					solL, err := Solve(pr, Options{})
					if err != nil {
						t.Fatalf("%s: %v", g.name, err)
					}

					// Latency under the loosest interesting period bound must
					// recover the latency optimum; under the period optimum it
					// must stay feasible.
					pr.Objective = LatencyUnderPeriod
					pr.Bound = solL.Cost.Period * 2
					sol, err := Solve(pr, Options{})
					if err != nil {
						t.Fatalf("%s: %v", g.name, err)
					}
					if sol.Exact && solL.Exact && !numeric.Eq(sol.Cost.Latency, solL.Cost.Latency) {
						t.Errorf("%s dp=%v: loose period bound latency %v != optimum %v",
							g.name, dp, sol.Cost.Latency, solL.Cost.Latency)
					}
					pr.Bound = solP.Cost.Period
					sol, err = Solve(pr, Options{})
					if err != nil {
						t.Fatalf("%s: %v", g.name, err)
					}
					if sol.Exact && !sol.Feasible {
						t.Errorf("%s dp=%v: exact solver infeasible at the period optimum", g.name, dp)
					}
					if sol.Feasible && numeric.Greater(sol.Cost.Period, pr.Bound) {
						t.Errorf("%s dp=%v: period bound violated", g.name, dp)
					}

					// Period under the latency optimum bound.
					pr.Objective = PeriodUnderLatency
					pr.Bound = solL.Cost.Latency
					sol, err = Solve(pr, Options{})
					if err != nil {
						t.Fatalf("%s: %v", g.name, err)
					}
					if sol.Exact && !sol.Feasible {
						t.Errorf("%s dp=%v: exact solver infeasible at the latency optimum", g.name, dp)
					}
					if sol.Feasible && numeric.Greater(sol.Cost.Latency, pr.Bound) {
						t.Errorf("%s dp=%v: latency bound violated", g.name, dp)
					}
				}
			}
		}
	}
}

// TestBiCriteriaMonotoneInBound checks that relaxing the bound never
// worsens the optimized criterion (exact cells only).
func TestBiCriteriaMonotoneInBound(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 20; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		pr := Problem{Pipeline: &p, Platform: pl, AllowDataParallel: rng.Intn(2) == 0}
		pr.Objective = MinPeriod
		base, err := Solve(pr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pr.Objective = LatencyUnderPeriod
		prevLatency := numeric.Inf
		for _, mult := range []float64{1, 1.3, 1.8, 3} {
			pr.Bound = base.Cost.Period * mult
			sol, err := Solve(pr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Feasible || !sol.Exact {
				continue
			}
			if numeric.Greater(sol.Cost.Latency, prevLatency) {
				t.Fatalf("trial %d: latency increased when relaxing the period bound (%v -> %v)",
					trial, prevLatency, sol.Cost.Latency)
			}
			prevLatency = sol.Cost.Latency
		}
	}
}

// TestHeuristicBoundedPaths forces the heuristic path on bounded
// objectives and checks soundness of the feasibility verdicts.
func TestHeuristicBoundedPaths(t *testing.T) {
	tiny := Options{MaxExhaustivePipelineProcs: 1, MaxExhaustiveForkStages: 1, MaxExhaustiveForkProcs: 1}
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(2, 2, 1, 1)

	// A loose bound: the heuristic must find something.
	pr := Problem{Pipeline: &p, Platform: pl, AllowDataParallel: true, Objective: LatencyUnderPeriod, Bound: 24}
	sol, err := Solve(pr, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.Method != MethodHeuristic {
		t.Fatalf("heuristic bounded path: %v", sol)
	}
	if numeric.Greater(sol.Cost.Period, 24) {
		t.Fatalf("bound violated: %v", sol.Cost)
	}
	// The heuristic's latency can never beat the exhaustive optimum.
	ref, _ := exhaustive.PipelineLatencyUnderPeriod(p, pl, true, 24)
	if numeric.Less(sol.Cost.Latency, ref.Cost.Latency) {
		t.Fatalf("heuristic %v beats optimum %v", sol.Cost.Latency, ref.Cost.Latency)
	}

	// An impossible bound: the verdict is infeasible (and marked inexact).
	pr.Bound = 0.01
	sol, err = Solve(pr, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible || sol.Exact {
		t.Fatalf("impossible bound accepted: %v", sol)
	}

	// Fork heuristic bounded path.
	f := workflow.NewFork(2, 1, 3, 5, 2, 4, 1, 2)
	prF := Problem{Fork: &f, Platform: platform.New(3, 2, 1), Objective: PeriodUnderLatency, Bound: f.TotalWork()}
	solF, err := Solve(prF, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !solF.Feasible || solF.Method != MethodHeuristic {
		t.Fatalf("fork heuristic bounded path: %v", solF)
	}
	if numeric.Greater(solF.Cost.Latency, prF.Bound) {
		t.Fatalf("fork latency bound violated: %v", solF.Cost)
	}

	// Fork-join heuristic bounded path.
	fj := workflow.NewForkJoin(2, 3, 1, 3, 5, 2, 4, 1, 2)
	prFJ := Problem{ForkJoin: &fj, Platform: platform.New(3, 2, 1), Objective: LatencyUnderPeriod, Bound: fj.TotalWork()}
	solFJ, err := Solve(prFJ, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !solFJ.Feasible || solFJ.Method != MethodHeuristic {
		t.Fatalf("fork-join heuristic bounded path: %v", solFJ)
	}
}

// TestSolveTheorem8Paths exercises the het-platform hom-pipeline bounded
// objectives (Theorem 8 dispatch).
func TestSolveTheorem8Paths(t *testing.T) {
	p := workflow.HomogeneousPipeline(4, 3)
	pl := platform.New(3, 2, 1)
	pr := Problem{Pipeline: &p, Platform: pl, Objective: LatencyUnderPeriod, Bound: 4}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodBinarySearchDP || !sol.Exact {
		t.Fatalf("Theorem 8 path: %v", sol)
	}
	ref, ok := exhaustive.PipelineLatencyUnderPeriod(p, pl, false, 4)
	if sol.Feasible != ok {
		t.Fatalf("feasibility mismatch with exhaustive")
	}
	if sol.Feasible && !numeric.Eq(sol.Cost.Latency, ref.Cost.Latency) {
		t.Fatalf("latency %v != exhaustive %v", sol.Cost.Latency, ref.Cost.Latency)
	}

	pr.Objective = PeriodUnderLatency
	pr.Bound = 12
	sol, err = Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodBinarySearchDP {
		t.Fatalf("Theorem 8 converse path: %v", sol)
	}
	// Infeasible latency bound.
	pr.Bound = 0.1
	sol, err = Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("impossible latency bound accepted")
	}
}

// TestSolveCorollary1Paths exercises the closed-form bounded objectives on
// homogeneous platforms without data-parallelism.
func TestSolveCorollary1Paths(t *testing.T) {
	p := workflow.NewPipeline(6, 2)
	pl := platform.Homogeneous(2, 1)
	pr := Problem{Pipeline: &p, Platform: pl, Objective: LatencyUnderPeriod, Bound: 4}
	sol, err := Solve(pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !numeric.Eq(sol.Cost.Latency, 8) || sol.Method != MethodClosedForm {
		t.Fatalf("Corollary 1 path: %v", sol)
	}
	pr.Bound = 3 // below the optimal period 4
	sol, _ = Solve(pr, Options{})
	if sol.Feasible {
		t.Fatal("impossible period bound accepted")
	}
	pr.Objective = PeriodUnderLatency
	pr.Bound = 8
	sol, _ = Solve(pr, Options{})
	if !sol.Feasible || !numeric.Eq(sol.Cost.Period, 4) {
		t.Fatalf("Corollary 1 converse: %v", sol)
	}
	pr.Bound = 7 // below the universal latency 8
	sol, _ = Solve(pr, Options{})
	if sol.Feasible {
		t.Fatal("impossible latency bound accepted")
	}
}
