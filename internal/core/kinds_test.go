package core

import (
	"bytes"
	"strings"
	"testing"

	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestKindRegistryNames: every registered kind resolves by its wire name
// and round-trips through KindSpecFor.
func TestKindRegistryNames(t *testing.T) {
	specs := KindSpecs()
	if len(specs) < 6 {
		t.Fatalf("registry has %d kinds, want at least the 3 legacy + sp + 2 comm kinds", len(specs))
	}
	for _, spec := range specs {
		if spec.Name != spec.Kind.String() {
			t.Errorf("kind %v registered under name %q", spec.Kind, spec.Name)
		}
		byName, err := KindByName(spec.Name)
		if err != nil || byName.Kind != spec.Kind {
			t.Errorf("KindByName(%q) = %v, %v", spec.Name, byName, err)
		}
		byKind, err := KindSpecFor(spec.Kind)
		if err != nil || byKind != byName {
			t.Errorf("KindSpecFor(%v) = %p, %v; want %p", spec.Kind, byKind, err, byName)
		}
	}
}

// TestUnknownKindDispatchSites walks every dispatch site that used to
// carry a silent `default:` branch on the closed Kind enum: each one now
// fails with the structured ErrKindUnsupportedKind (or rejects the
// instance outright) instead of misclassifying it.
func TestUnknownKindDispatchSites(t *testing.T) {
	const bogus = workflow.Kind(97)

	// Registry resolution by kind and by name.
	if _, err := KindSpecFor(bogus); ErrKindOf(err) != ErrKindUnsupportedKind {
		t.Errorf("KindSpecFor: err = %v (kind %v), want unsupported-kind", err, ErrKindOf(err))
	}
	if _, err := KindByName("gantt"); ErrKindOf(err) != ErrKindUnsupportedKind {
		t.Errorf("KindByName: err = %v (kind %v), want unsupported-kind", err, ErrKindOf(err))
	}

	// An instance no registered kind claims: validation rejects it with a
	// message naming every registered kind, and Solve refuses it.
	unclaimed := Problem{Platform: platform.Homogeneous(2, 1), Objective: MinPeriod}
	err := unclaimed.Validate()
	if ErrKindOf(err) != ErrKindInvalidInstance {
		t.Fatalf("Validate: err = %v (kind %v), want invalid-instance", err, ErrKindOf(err))
	}
	for _, spec := range KindSpecs() {
		if !strings.Contains(err.Error(), spec.Name) {
			t.Errorf("validation message %q does not name kind %q", err, spec.Name)
		}
	}
	if _, err := Solve(unclaimed, Options{}); err == nil {
		t.Error("Solve accepted an instance no kind claims")
	}

	// Cell-key derivation and classification degrade to explicit
	// sentinels, never to a legacy kind's cell.
	key := CellKeyOf(unclaimed)
	if _, registered := kindSpecs[key.Kind]; registered {
		t.Errorf("CellKeyOf mapped an unclaimed instance onto registered kind %v", key.Kind)
	}
	if cl := ClassifyCell(key); cl != (Classification{}) {
		t.Errorf("ClassifyCell(%v) = %+v, want the zero classification", key, cl)
	}
	if _, ok := LookupSolver(key); ok {
		t.Errorf("LookupSolver(%v) found a solver for an unregistered cell", key)
	}
	if _, ok := LookupAnytimeSolver(key); ok {
		t.Errorf("LookupAnytimeSolver(%v) found a solver for an unregistered cell", key)
	}

	// The fingerprint hook emits the reserved '?' tag, so unclaimed
	// instances can never collide with a real kind's cache entries.
	if fp := AppendGraphFingerprint(unclaimed, nil); !bytes.Equal(fp, []byte{'?'}) {
		t.Errorf("AppendGraphFingerprint = %q, want the reserved '?' tag", fp)
	}

	// No enumerated cell carries an unregistered kind.
	for _, k := range AllCellKeys() {
		if _, err := KindSpecFor(k.Kind); err != nil {
			t.Errorf("AllCellKeys emitted unregistered kind %v", k.Kind)
		}
	}
}
