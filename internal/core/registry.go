package core

import (
	"context"
	"fmt"
	"sort"

	"repliflow/internal/workflow"
)

// CellKey identifies one dispatch cell of Table 1: the graph kind, the two
// homogeneity axes, the mapping model (with or without data-parallelism)
// and the objective. Every problem instance reduces to exactly one key,
// and every key resolves to exactly one registered solver.
type CellKey struct {
	Kind                workflow.Kind
	PlatformHomogeneous bool
	GraphHomogeneous    bool
	DataParallel        bool
	Objective           Objective
}

// String implements fmt.Stringer with a compact cell label.
func (k CellKey) String() string {
	plat, graph, model := "het-platform", "het-graph", "no-dp"
	if k.PlatformHomogeneous {
		plat = "hom-platform"
	}
	if k.GraphHomogeneous {
		graph = "hom-graph"
	}
	if k.DataParallel {
		model = "dp"
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s", k.Kind, plat, graph, model, k.Objective)
}

// SolverFunc solves one (validated, options-normalized) problem instance.
// Implementations must honour ctx: long searches return ctx.Err() promptly
// once the context is cancelled.
type SolverFunc func(ctx context.Context, pr Problem, opts Options) (Solution, error)

// PreparedSolve solves objective/bound variants of one prepared
// (workflow, platform, model) triple. The passed problem must differ from
// the prepared one only in Objective and Bound, and the result must be
// byte-identical to the owning entry's Solve on the same problem — the
// whole point is that batch engines may substitute it for Solve freely.
// A PreparedSolve is not safe for concurrent use; callers pool instances.
type PreparedSolve func(ctx context.Context, pr Problem) (Solution, error)

// PreparedCell is the product of a cell's Prepare capability: the solve
// closure plus the tunables of the underlying shared solver.
type PreparedCell struct {
	Solve PreparedSolve
	// SetParallelism retunes the worker count of subsequent solves to a
	// concrete, already-resolved value (engine pools donate idle slots
	// per solve). Nil when the cell's solver has no parallel path.
	// Results stay byte-identical at every setting, so retuning between
	// solves never invalidates the prepared solver's memos.
	SetParallelism func(workers int)
}

// SolverEntry is one registered solver: the algorithm family used for
// in-limit instances, whether that family is exact, the paper result
// backing the cell, and the solver itself. On NP-hard cells Method and
// Exact describe the exhaustive path; oversized instances fall back to
// polynomial heuristics at solve time (reported per-solution through
// Solution.Method and Solution.Exact).
type SolverEntry struct {
	Method Method
	Exact  bool
	Source string
	Solve  SolverFunc
	// Prepare, when non-nil, returns a prepared variant of Solve for
	// repeated solves of one instance that differ only in Objective and
	// Bound (Pareto sweeps, bi-criteria probes): shared preprocessing,
	// reusable scratch memory and per-bound memoization. It returns nil
	// when preparation does not apply under opts (e.g. the instance
	// exceeds the exhaustive limits, so solves take the heuristic path).
	// All cells of one graph kind share a single Prepare implementation,
	// so one prepared instance serves every objective of the family.
	Prepare func(pr Problem, opts Options) *PreparedCell
}

// registry maps every Table 1 dispatch cell to its solver. It is populated
// at init time by the per-kind solver files and immutable after.
var registry = map[CellKey]SolverEntry{}

// register installs a solver entry, panicking on duplicates or nil solvers:
// both are programming errors caught by any test run.
func register(key CellKey, e SolverEntry) {
	if e.Solve == nil {
		panic(fmt.Sprintf("core: nil solver registered for cell %v", key))
	}
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("core: duplicate solver registration for cell %v", key))
	}
	registry[key] = e
}

// CellKeyOf returns the dispatch key of a problem. The problem should be
// validated first; the key of an invalid problem is unspecified.
func CellKeyOf(pr Problem) CellKey {
	return CellKey{
		Kind:                pr.graphKind(),
		PlatformHomogeneous: pr.platformHomogeneous(),
		GraphHomogeneous:    pr.graphHomogeneous(),
		DataParallel:        pr.AllowDataParallel,
		Objective:           pr.Objective,
	}
}

// LookupSolver returns the registered solver entry for a dispatch cell.
func LookupSolver(key CellKey) (SolverEntry, bool) {
	e, ok := registry[key]
	return e, ok
}

// LookupAnytimeSolver returns the budget-bounded portfolio solver of an
// NP-hard dispatch cell: every MethodExhaustive cell whose kind spec
// advertises the Anytime capability has one. Polynomial cells — and
// kinds without a portfolio, like the communication-aware variants —
// have none; SolveContext then ignores the budget and takes the
// registered solver.
func LookupAnytimeSolver(key CellKey) (SolverFunc, bool) {
	e, ok := registry[key]
	if !ok || e.Method != MethodExhaustive {
		return nil, false
	}
	spec, ok := kindSpecs[key.Kind]
	if !ok || spec.Anytime == nil {
		return nil, false
	}
	return spec.Anytime, true
}

// RegisteredCells returns every registered dispatch key in a deterministic
// order.
func RegisteredCells() []CellKey {
	keys := make([]CellKey, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// AllCellKeys enumerates every dispatch key Classify can emit: for each
// registered kind, the cross product of the homogeneity axes, the mapping
// models the kind supports (the data-parallel axis exists only for kinds
// with the capability) and the objectives. The registry-completeness test
// checks each resolves to a registered solver.
func AllCellKeys() []CellKey {
	var keys []CellKey
	for _, spec := range KindSpecs() {
		dps := []bool{false}
		if spec.DataParallel {
			dps = []bool{false, true}
		}
		for _, platHom := range []bool{false, true} {
			for _, graphHom := range []bool{false, true} {
				for _, dp := range dps {
					for _, obj := range []Objective{MinPeriod, MinLatency, LatencyUnderPeriod, PeriodUnderLatency} {
						keys = append(keys, CellKey{spec.Kind, platHom, graphHom, dp, obj})
					}
				}
			}
		}
	}
	return keys
}

// classificationOf returns the Table 1 cell of a validated problem without
// re-validating it.
func classificationOf(pr Problem) Classification {
	return ClassifyCell(CellKeyOf(pr))
}

// ExactlySolvable reports whether Solve is guaranteed to return an exact
// solution (Solution.Exact == true) for the instance under opts: either
// the cell is polynomial, or it is NP-hard but within the kind's
// exhaustive search limits. The instance must be valid.
func ExactlySolvable(pr Problem, opts Options) bool {
	opts = opts.Normalized()
	if classificationOf(pr).Complexity.Polynomial() {
		return true
	}
	// A budget switches NP-hard cells with a portfolio to the anytime
	// path, whose result is certified but not guaranteed exact (the
	// budget may expire before the exact member finishes).
	if opts.AnytimeBudget > 0 {
		if _, ok := LookupAnytimeSolver(CellKeyOf(pr)); ok {
			return false
		}
	}
	spec := specOf(pr)
	return spec != nil && spec.ExactlySolvable(pr, opts)
}

// SolveContext classifies the problem into its Table 1 cell and solves it
// with the registered solver, honouring ctx: exhaustive searches on NP-hard
// cells poll the context and return ctx.Err() promptly when cancelled. The
// zero Options value applies DefaultOptions.
func SolveContext(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	if err := pr.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.Normalized()
	key := CellKeyOf(pr)
	if opts.AnytimeBudget > 0 {
		if fn, ok := LookupAnytimeSolver(key); ok {
			return fn(ctx, pr, opts)
		}
	}
	e, ok := registry[key]
	if !ok {
		// Unreachable when the registry is complete (guaranteed by test).
		return Solution{}, WithErrKind(ErrKindNoSolver,
			fmt.Errorf("core: no solver registered for cell %v", key))
	}
	return e.Solve(ctx, pr, opts)
}

// Solve classifies the problem into its Table 1 cell and solves it with
// the matching algorithm. The zero Options value applies DefaultOptions.
func Solve(pr Problem, opts Options) (Solution, error) {
	return SolveContext(context.Background(), pr, opts)
}
