package core

import (
	"fmt"

	"repliflow/internal/mapping"
)

// Method records which solver produced a solution.
type Method int

const (
	// MethodClosedForm is a straightforward constructive optimum (the
	// "Poly (str)" cells).
	MethodClosedForm Method = iota
	// MethodDP is a polynomial dynamic programming algorithm.
	MethodDP
	// MethodBinarySearchDP is a binary search combined with dynamic
	// programming (the "Poly (*)" cells).
	MethodBinarySearchDP
	// MethodExhaustive is exact exponential search (NP-hard cells, small
	// instances).
	MethodExhaustive
	// MethodHeuristic is a polynomial heuristic (NP-hard cells, large
	// instances); the solution is feasible but not necessarily optimal.
	MethodHeuristic
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodClosedForm:
		return "closed-form"
	case MethodDP:
		return "dynamic-programming"
	case MethodBinarySearchDP:
		return "binary-search+DP"
	case MethodExhaustive:
		return "exhaustive"
	case MethodHeuristic:
		return "heuristic"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Solution is the outcome of Solve. Exactly one of the mapping fields is
// non-nil, matching the problem's graph kind. Feasible is false when the
// requested bound cannot be met (for heuristic solutions this may be a
// false negative, flagged by Exact == false).
type Solution struct {
	PipelineMapping *mapping.PipelineMapping
	ForkMapping     *mapping.ForkMapping
	ForkJoinMapping *mapping.ForkJoinMapping

	Cost           mapping.Cost
	Method         Method
	Exact          bool
	Feasible       bool
	Classification Classification
}

// String summarizes the solution.
func (s Solution) String() string {
	if !s.Feasible {
		return fmt.Sprintf("infeasible (%s, %s)", s.Classification.Complexity, s.Method)
	}
	var m fmt.Stringer
	switch {
	case s.PipelineMapping != nil:
		m = s.PipelineMapping
	case s.ForkMapping != nil:
		m = s.ForkMapping
	default:
		m = s.ForkJoinMapping
	}
	exact := "exact"
	if !s.Exact {
		exact = "heuristic"
	}
	return fmt.Sprintf("%s [%s via %s, %s, cell %s by %s]",
		m, s.Cost, s.Method, exact, s.Classification.Complexity, s.Classification.Source)
}

// Options tunes Solve's behaviour on NP-hard cells: instances within the
// exhaustive limits are solved exactly by exponential search, larger ones
// fall back to polynomial heuristics.
type Options struct {
	// MaxExhaustivePipelineProcs bounds p for the bitmask DP (cost 3^p).
	MaxExhaustivePipelineProcs int
	// MaxExhaustiveForkStages bounds the fork stage count (root + leaves
	// [+ join]) for set-partition enumeration.
	MaxExhaustiveForkStages int
	// MaxExhaustiveForkProcs bounds p for fork enumeration.
	MaxExhaustiveForkProcs int
}

// DefaultOptions are the limits used when Solve is called with the zero
// Options value.
func DefaultOptions() Options {
	return Options{
		MaxExhaustivePipelineProcs: 10,
		MaxExhaustiveForkStages:    6,
		MaxExhaustiveForkProcs:     5,
	}
}

// Normalized returns the options with zero fields replaced by their
// DefaultOptions values — the form Solve works with internally, and the
// form batch engines should fingerprint.
func (o Options) Normalized() Options {
	d := DefaultOptions()
	if o.MaxExhaustivePipelineProcs <= 0 {
		o.MaxExhaustivePipelineProcs = d.MaxExhaustivePipelineProcs
	}
	if o.MaxExhaustiveForkStages <= 0 {
		o.MaxExhaustiveForkStages = d.MaxExhaustiveForkStages
	}
	if o.MaxExhaustiveForkProcs <= 0 {
		o.MaxExhaustiveForkProcs = d.MaxExhaustiveForkProcs
	}
	return o
}
