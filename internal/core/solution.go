package core

import (
	"fmt"
	"time"

	"repliflow/internal/fullmodel"
	"repliflow/internal/mapping"
)

// Method records which solver produced a solution.
type Method int

const (
	// MethodClosedForm is a straightforward constructive optimum (the
	// "Poly (str)" cells).
	MethodClosedForm Method = iota
	// MethodDP is a polynomial dynamic programming algorithm.
	MethodDP
	// MethodBinarySearchDP is a binary search combined with dynamic
	// programming (the "Poly (*)" cells).
	MethodBinarySearchDP
	// MethodExhaustive is exact exponential search (NP-hard cells, small
	// instances).
	MethodExhaustive
	// MethodHeuristic is a polynomial heuristic (NP-hard cells, large
	// instances); the solution is feasible but not necessarily optimal.
	MethodHeuristic
	// MethodAnytime is the budget-bounded portfolio of internal/anytime
	// (NP-hard cells with Options.AnytimeBudget set): the best incumbent
	// found within the budget, carrying a certified optimality gap.
	MethodAnytime
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodClosedForm:
		return "closed-form"
	case MethodDP:
		return "dynamic-programming"
	case MethodBinarySearchDP:
		return "binary-search+DP"
	case MethodExhaustive:
		return "exhaustive"
	case MethodHeuristic:
		return "heuristic"
	case MethodAnytime:
		return "anytime"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Solution is the outcome of Solve. Exactly one of the mapping fields is
// non-nil, matching the problem's graph kind. Feasible is false when the
// requested bound cannot be met (for heuristic solutions this may be a
// false negative, flagged by Exact == false).
type Solution struct {
	PipelineMapping *mapping.PipelineMapping
	ForkMapping     *mapping.ForkMapping
	ForkJoinMapping *mapping.ForkJoinMapping
	SPMapping       *mapping.SPMapping

	CommPipelineMapping *fullmodel.Mapping
	CommForkMapping     *fullmodel.ForkMapping

	Cost           mapping.Cost
	Method         Method
	Exact          bool
	Feasible       bool
	Classification Classification

	// Anytime marks solutions produced by the budget-bounded portfolio
	// (Options.AnytimeBudget on an NP-hard cell). The three fields below
	// are meaningful only when it is set.
	Anytime bool
	// Gap is the certified relative optimality gap of a feasible anytime
	// solution: the optimum lies within [objective/(1+Gap), objective].
	// Proven optima (Exact == true) have Gap == 0.
	Gap float64
	// LowerBound is the certified lower bound on the optimized criterion
	// the gap was computed against.
	LowerBound float64
	// Iterations counts the candidate mappings the portfolio evaluated.
	Iterations uint64
}

// String summarizes the solution.
func (s Solution) String() string {
	if !s.Feasible {
		return fmt.Sprintf("infeasible (%s, %s)", s.Classification.Complexity, s.Method)
	}
	var m fmt.Stringer
	switch {
	case s.PipelineMapping != nil:
		m = s.PipelineMapping
	case s.ForkMapping != nil:
		m = s.ForkMapping
	case s.SPMapping != nil:
		m = s.SPMapping
	case s.CommPipelineMapping != nil:
		m = s.CommPipelineMapping
	case s.CommForkMapping != nil:
		m = s.CommForkMapping
	default:
		m = s.ForkJoinMapping
	}
	exact := "exact"
	if !s.Exact {
		exact = "heuristic"
	}
	return fmt.Sprintf("%s [%s via %s, %s, cell %s by %s]",
		m, s.Cost, s.Method, exact, s.Classification.Complexity, s.Classification.Source)
}

// Options tunes Solve's behaviour on NP-hard cells: instances within the
// exhaustive limits are solved exactly by exponential search, larger ones
// fall back to polynomial heuristics.
type Options struct {
	// MaxExhaustivePipelineProcs bounds p for the bitmask DP (cost 3^p).
	MaxExhaustivePipelineProcs int
	// MaxExhaustiveForkStages bounds the fork stage count (root + leaves
	// [+ join]) for set-partition enumeration.
	MaxExhaustiveForkStages int
	// MaxExhaustiveForkProcs bounds p for fork enumeration.
	MaxExhaustiveForkProcs int
	// AnytimeBudget, when positive, switches every NP-hard cell to the
	// internal/anytime portfolio: heuristic seeds, concurrent annealers
	// and (within the exhaustive limits) the exact solver race until the
	// budget — or the caller's earlier context deadline — expires, and
	// the best incumbent is returned with a certified optimality gap
	// (Solution.Gap) instead of an unbounded exhaustive search or a bare
	// heuristic answer. Zero keeps the legacy exhaustive-or-heuristic
	// behaviour. Polynomial cells ignore the budget.
	AnytimeBudget time.Duration
	// Parallelism partitions the search space of each exhaustive solve
	// across workers that share an atomic incumbent bound: values above 1
	// run that many workers per solve, 0 and 1 keep the search serial
	// (the default — the serial path is allocation-clean), and negative
	// values select auto mode, using up to -n workers (-1 = GOMAXPROCS)
	// only on instances large enough to clear the crossover heuristic of
	// docs/performance.md (small searches finish before the fan-out pays
	// for itself). Exact results are byte-identical at every setting:
	// shards merge in a fixed order, so equal-cost ties resolve exactly as
	// in the serial scan. Heuristic, anytime-portfolio and polynomial
	// paths ignore the setting.
	Parallelism int
}

// DefaultOptions are the limits used when Solve is called with the zero
// Options value.
func DefaultOptions() Options {
	return Options{
		MaxExhaustivePipelineProcs: 10,
		MaxExhaustiveForkStages:    6,
		MaxExhaustiveForkProcs:     5,
	}
}

// Normalized returns the options with zero fields replaced by their
// DefaultOptions values — the form Solve works with internally, and the
// form batch engines should fingerprint.
func (o Options) Normalized() Options {
	d := DefaultOptions()
	if o.MaxExhaustivePipelineProcs <= 0 {
		o.MaxExhaustivePipelineProcs = d.MaxExhaustivePipelineProcs
	}
	if o.MaxExhaustiveForkStages <= 0 {
		o.MaxExhaustiveForkStages = d.MaxExhaustiveForkStages
	}
	if o.MaxExhaustiveForkProcs <= 0 {
		o.MaxExhaustiveForkProcs = d.MaxExhaustiveForkProcs
	}
	if o.AnytimeBudget < 0 {
		o.AnytimeBudget = 0
	}
	return o
}
