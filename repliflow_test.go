package repliflow_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repliflow"
	"repliflow/internal/core"
	"repliflow/internal/numeric"
)

func TestPublicAPIQuickstart(t *testing.T) {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	sol, err := repliflow.Solve(repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
		Objective:         repliflow.MinLatency,
	}, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !sol.Exact {
		t.Fatalf("solution not exact/feasible: %v", sol)
	}
	if !numeric.Eq(sol.Cost.Latency, 17) {
		t.Fatalf("latency = %v, want 17", sol.Cost.Latency)
	}
}

func TestPublicAPIClassify(t *testing.T) {
	pipe := repliflow.HomogeneousPipeline(4, 2)
	plat := repliflow.NewPlatform(1, 2, 3)
	cl, err := repliflow.Classify(repliflow.Problem{
		Pipeline:  &pipe,
		Platform:  plat,
		Objective: repliflow.MinPeriod,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Complexity != repliflow.PolyBinarySearchDP || cl.Source != "Theorem 7" {
		t.Fatalf("classification = %+v", cl)
	}
}

func TestPublicAPIManualMappingEvaluation(t *testing.T) {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.NewPlatform(2, 2, 1, 1)
	m := repliflow.PipelineMapping{Intervals: []repliflow.PipelineInterval{
		repliflow.NewPipelineInterval(0, 0, repliflow.DataParallel, 0, 1),
		repliflow.NewPipelineInterval(1, 3, repliflow.Replicated, 2, 3),
	}}
	c, err := repliflow.EvalPipeline(pipe, plat, m)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(c.Period, 5) || !numeric.Eq(c.Latency, 13.5) {
		t.Fatalf("cost = %v, want period=5 latency=13.5", c)
	}
}

func TestPublicAPIForkAndForkJoin(t *testing.T) {
	f := repliflow.HomogeneousFork(2, 3, 1)
	plat := repliflow.HomogeneousPlatform(3, 1)
	sol, err := repliflow.Solve(repliflow.Problem{
		Fork:      &f,
		Platform:  plat,
		Objective: repliflow.MinPeriod,
	}, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(sol.Cost.Period, 5.0/3) {
		t.Fatalf("fork period = %v, want 5/3", sol.Cost.Period)
	}

	fj := repliflow.NewForkJoin(1, 2, 3, 3)
	mfj := repliflow.ForkJoinMapping{Blocks: []repliflow.ForkJoinBlock{
		repliflow.NewForkJoinBlock(true, true, []int{0}, repliflow.Replicated, 0),
		repliflow.NewForkJoinBlock(false, false, []int{1}, repliflow.Replicated, 1, 2),
	}}
	c, err := repliflow.EvalForkJoin(fj, plat, mfj)
	if err != nil {
		t.Fatal(err)
	}
	// Block 1 = {S0,S1,Sjoin} weight 6 on one unit processor; block 2 =
	// {S2} weight 3 replicated on two unit processors.
	// rootDone = 1, leafDone = max(1+3, 1+3) = 4, latency = 4 + 2 = 6.
	if !numeric.Eq(c.Latency, 6) {
		t.Fatalf("fork-join latency = %v, want 6", c.Latency)
	}
	if !numeric.Eq(c.Period, 6) { // block 1 period 6/(1*1)
		t.Fatalf("fork-join period = %v, want 6", c.Period)
	}
}

func TestPublicAPIEngine(t *testing.T) {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	pr := repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
		Objective:         repliflow.MinLatency,
	}

	// SolveContext matches Solve.
	want, err := repliflow.Solve(pr, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := repliflow.SolveContext(context.Background(), pr, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("SolveContext diverges from Solve")
	}

	// A cancelled context is honoured.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repliflow.SolveContext(ctx, pr, repliflow.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SolveContext returned %v", err)
	}

	// SolveBatch aligns solutions with inputs.
	perPr := pr
	perPr.Objective = repliflow.MinPeriod
	sols, err := repliflow.SolveBatch(context.Background(), []repliflow.Problem{pr, perPr}, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 || sols[0].Cost.Latency != 17 || sols[1].Cost.Period != 8 {
		t.Errorf("batch solutions wrong: %v", sols)
	}

	// A reusable engine caches across calls.
	eng := repliflow.NewEngine(2)
	if _, err := eng.SolveBatch(context.Background(), []repliflow.Problem{pr, pr}, repliflow.Options{}); err != nil {
		t.Fatal(err)
	}
	if hits, _ := eng.CacheStats(); hits == 0 {
		t.Error("engine cache never hit on a duplicate batch")
	}

	// ParetoFrontContext returns the same front as ParetoFront.
	f1, err := repliflow.ParetoFront(pr, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := repliflow.ParetoFrontContext(context.Background(), pr, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Error("ParetoFrontContext diverges from ParetoFront")
	}

	// The registry is visible through the public API.
	cl, err := repliflow.Classify(pr)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := repliflow.LookupSolver(core.CellKeyOf(pr))
	if !ok {
		t.Fatal("no registered solver for the quickstart cell")
	}
	if entry.Source != cl.Source {
		t.Errorf("registry source %q, classification source %q", entry.Source, cl.Source)
	}
}
