module repliflow

go 1.24
