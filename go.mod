module repliflow

go 1.23
