// Soak tests: wider randomized cross-validation of the polynomial
// algorithms against exhaustive search, at larger sizes than the unit
// tests. Skipped under -short.
package repliflow_test

import (
	"math/rand"
	"testing"

	"repliflow/internal/core"
	"repliflow/internal/exhaustive"
	"repliflow/internal/forkalgo"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/pipealgo"
	"repliflow/internal/platform"
	"repliflow/internal/sim"
	"repliflow/internal/workflow"
)

func TestSoakTheorem7LargerInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		w := float64(1 + rng.Intn(12))
		p := workflow.HomogeneousPipeline(n, w)
		pl := platform.Random(rng, 1+rng.Intn(6), 7)
		res, err := pipealgo.HetHomPipelinePeriodNoDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
			t.Fatalf("trial %d: Theorem 7 %v != exhaustive %v (n=%d w=%v speeds=%v)",
				trial, res.Cost.Period, opt.Cost.Period, n, w, pl.Speeds)
		}
	}
}

func TestSoakTheorem11LargerInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(5)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(12)), n, float64(1+rng.Intn(12)))
		pl := platform.Homogeneous(1+rng.Intn(5), float64(1+rng.Intn(3)))
		for _, dp := range []bool{false, true} {
			res, err := forkalgo.HomForkLatency(f, pl, dp)
			if err != nil {
				t.Fatal(err)
			}
			opt, ok := exhaustive.ForkLatency(f, pl, dp)
			if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
				t.Fatalf("trial %d: Theorem 11 %v != exhaustive %v (dp=%v w0=%v n=%d p=%d)",
					trial, res.Cost.Latency, opt.Cost.Latency, dp, f.Root, n, pl.Processors())
			}
		}
	}
}

func TestSoakSolveAgainstExhaustiveMixedInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 60; trial++ {
		dp := rng.Intn(2) == 0
		p := workflow.RandomPipeline(rng, 1+rng.Intn(5), 12)
		pl := platform.Random(rng, 1+rng.Intn(5), 6)
		pr := core.Problem{Pipeline: &p, Platform: pl, AllowDataParallel: dp, Objective: core.MinPeriod}
		sol, err := core.Solve(pr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Exact {
			continue
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, dp)
		if !ok || !numeric.Eq(sol.Cost.Period, opt.Cost.Period) {
			t.Fatalf("trial %d: Solve %v != exhaustive %v (pipe=%v speeds=%v dp=%v)",
				trial, sol.Cost.Period, opt.Cost.Period, p.Weights, pl.Speeds, dp)
		}
	}
}

func TestSoakSimulatorAgainstAnalyticLargeTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 10; trial++ {
		p := workflow.RandomPipeline(rng, 2+rng.Intn(4), 9)
		pl := platform.Random(rng, 2+rng.Intn(4), 4)
		pr := core.Problem{Pipeline: &p, Platform: pl, AllowDataParallel: true, Objective: core.MinPeriod}
		sol, err := core.Solve(pr, core.Options{})
		if err != nil || !sol.Feasible {
			t.Fatal(err)
		}
		tr, err := sim.SimulatePipeline(p, pl, *sol.PipelineMapping, sim.Arrivals(10000, 0))
		if err != nil {
			t.Fatal(err)
		}
		if rel := tr.SteadyStatePeriod() / sol.Cost.Period; rel < 0.995 || rel > 1.005 {
			t.Fatalf("trial %d: simulated period %v vs analytic %v (mapping %v)",
				trial, tr.SteadyStatePeriod(), sol.Cost.Period, sol.PipelineMapping)
		}
	}
}

func TestSoakParetoConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 15; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		dp := rng.Intn(2) == 0
		front, err := core.ParetoFront(core.Problem{Pipeline: &p, Platform: pl, AllowDataParallel: dp}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !core.FrontIsMonotone(front) {
			t.Fatalf("trial %d: non-monotone front", trial)
		}
		// Every front point's mapping must achieve its advertised cost.
		for _, sol := range front {
			c, err := mapping.EvalPipeline(p, pl, *sol.PipelineMapping)
			if err != nil || !numeric.Eq(c.Period, sol.Cost.Period) || !numeric.Eq(c.Latency, sol.Cost.Latency) {
				t.Fatalf("trial %d: front point cost mismatch: %v vs %v (err=%v)", trial, sol.Cost, c, err)
			}
		}
	}
}
