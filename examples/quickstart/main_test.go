package main

import (
	"testing"

	"repliflow"
)

// TestQuickstartLogic exercises the example's public-API calls and pins
// the Section 2 numbers it prints: minimum period 8 (replicate
// everything), minimum latency 17 (data-parallelize the heavy stage).
func TestQuickstartLogic(t *testing.T) {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	solve := func(obj repliflow.Objective, bound float64) repliflow.Solution {
		sol, err := repliflow.Solve(repliflow.Problem{
			Pipeline:          &pipe,
			Platform:          plat,
			AllowDataParallel: true,
			Objective:         obj,
			Bound:             bound,
		}, repliflow.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}

	if sol := solve(repliflow.MinPeriod, 0); sol.Cost.Period != 8 {
		t.Errorf("min period = %g, want 8", sol.Cost.Period)
	}
	if sol := solve(repliflow.MinLatency, 0); sol.Cost.Latency != 17 {
		t.Errorf("min latency = %g, want 17", sol.Cost.Latency)
	}
	// The bi-criteria sweep of the example: every bound it prints must
	// solve, and the loosest bound must be feasible.
	for _, bound := range []float64{8, 10, 14, 24} {
		sol := solve(repliflow.LatencyUnderPeriod, bound)
		if bound >= 8 && !sol.Feasible {
			t.Errorf("period bound %g infeasible, want feasible", bound)
		}
		if sol.Feasible && sol.Cost.Period > bound {
			t.Errorf("period bound %g violated: got period %g", bound, sol.Cost.Period)
		}
	}
}
