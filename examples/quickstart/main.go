// Quickstart: solve the paper's Section 2 example with the public API.
//
// The program maps the 4-stage pipeline (weights 14, 4, 2, 4) onto three
// identical unit-speed processors, reproducing the worked example of
// Benoit & Robert (RR-6308, Section 2): minimum period 8 (replicate
// everything), minimum latency 17 (data-parallelize the heavy first
// stage), and the trade-off between the two.
package main

import (
	"fmt"
	"log"

	"repliflow"
)

func main() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)

	solve := func(obj repliflow.Objective, bound float64) repliflow.Solution {
		sol, err := repliflow.Solve(repliflow.Problem{
			Pipeline:          &pipe,
			Platform:          plat,
			AllowDataParallel: true,
			Objective:         obj,
			Bound:             bound,
		}, repliflow.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return sol
	}

	fmt.Println("Section 2 pipeline on 3 unit-speed processors")
	fmt.Println()

	best := solve(repliflow.MinPeriod, 0)
	fmt.Printf("min period:  %s\n", best)

	best = solve(repliflow.MinLatency, 0)
	fmt.Printf("min latency: %s\n", best)

	// Bi-criteria: the best latency achievable at each period bound.
	fmt.Println("\nperiod bound -> optimal latency:")
	for _, bound := range []float64{8, 10, 14, 24} {
		sol := solve(repliflow.LatencyUnderPeriod, bound)
		if !sol.Feasible {
			fmt.Printf("  period <= %4g: infeasible\n", bound)
			continue
		}
		fmt.Printf("  period <= %4g: latency %-5g  %v\n", bound, sol.Cost.Latency, sol.PipelineMapping)
	}
}
