// NP-hardness in action: reductions and heuristic gaps.
//
// This example makes the paper's hardness results tangible. It builds the
// Theorem 5 reduction from a concrete 2-PARTITION instance and shows that
// deciding the mapping question answers the partition question; then it
// measures the gap between the polynomial heuristics and the exact
// exponential baselines on the NP-hard cells of Table 1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repliflow/internal/exhaustive"
	"repliflow/internal/heuristics"
	"repliflow/internal/nph"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func main() {
	reductionDemo()
	heuristicGapDemo()
}

func reductionDemo() {
	fmt.Println("=== Theorem 5: 2-PARTITION -> pipeline mapping with data-parallelism ===")
	for _, a := range [][]int{
		{5, 8, 3, 4, 6},  // S=26: {5,8}=13 vs {3,4,6}=13 -> yes
		{5, 8, 3, 4, 10}, // S=30: needs 15 = {5,10} -> yes
		{5, 8, 3, 4, 7},  // S=27 odd -> no
	} {
		subset, yes, err := nph.TwoPartition(a)
		if err != nil {
			log.Fatal(err)
		}
		pipe, plat, bound := nph.Theorem5Latency(a)
		opt, ok := exhaustive.PipelineLatency(pipe, plat, true)
		if !ok {
			log.Fatal("no mapping found")
		}
		mappingYes := numeric.LessEq(opt.Cost.Latency, bound)
		fmt.Printf("a=%v: 2-PARTITION=%v (witness %v); mapping latency %.4g vs bound %g -> %v",
			a, yes, subset, opt.Cost.Latency, bound, mappingYes)
		if mappingYes == yes {
			fmt.Println("  [reduction agrees]")
		} else {
			fmt.Println("  [REDUCTION VIOLATED]")
		}
	}
	fmt.Println()
}

func heuristicGapDemo() {
	fmt.Println("=== Heuristic vs exact on the Theorem 9 cell (het pipeline period, no DP) ===")
	rng := rand.New(rand.NewSource(7))
	worst, sum, count := 1.0, 0.0, 0
	for trial := 0; trial < 25; trial++ {
		pipe := workflow.RandomPipeline(rng, 2+rng.Intn(4), 12)
		plat := platform.Random(rng, 2+rng.Intn(3), 6)
		_, hc, err := heuristics.HetPipelinePeriodNoDP(pipe, plat)
		if err != nil {
			log.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(pipe, plat, false)
		if !ok {
			continue
		}
		gap := hc.Period / opt.Cost.Period
		sum += gap
		count++
		if gap > worst {
			worst = gap
			fmt.Printf("  new worst gap %.3f: pipeline %v on speeds %v (heuristic %.4g, optimal %.4g)\n",
				gap, pipe.Weights, plat.Speeds, hc.Period, opt.Cost.Period)
		}
	}
	fmt.Printf("  %d instances: mean gap %.3f, worst gap %.3f\n\n", count, sum/float64(count), worst)

	fmt.Println("=== Heuristic vs exact on the Theorem 12 cell (het fork latency, hom platform) ===")
	worst, sum, count = 1.0, 0.0, 0
	for trial := 0; trial < 25; trial++ {
		f := workflow.RandomFork(rng, 2+rng.Intn(3), 12)
		plat := platform.Homogeneous(2+rng.Intn(2), 1)
		_, hc, err := heuristics.HetForkLatencyLPT(f, plat)
		if err != nil {
			log.Fatal(err)
		}
		opt, ok := exhaustive.ForkLatency(f, plat, false)
		if !ok {
			continue
		}
		gap := hc.Latency / opt.Cost.Latency
		sum += gap
		count++
		if gap > worst {
			worst = gap
		}
	}
	fmt.Printf("  %d instances: mean gap %.3f, worst gap %.3f (LPT bound: 4/3)\n", count, sum/float64(count), worst)
}
