package main

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/heuristics"
	"repliflow/internal/nph"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestHardnessReductionLogic exercises the example's Theorem 5 reduction
// demo: for each 2-PARTITION instance it prints, the mapping decision must
// agree with the partition decision.
func TestHardnessReductionLogic(t *testing.T) {
	for _, a := range [][]int{
		{5, 8, 3, 4, 6},
		{5, 8, 3, 4, 10},
		{5, 8, 3, 4, 7},
	} {
		_, yes, err := nph.TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		pipe, plat, bound := nph.Theorem5Latency(a)
		opt, ok := exhaustive.PipelineLatency(pipe, plat, true)
		if !ok {
			t.Fatalf("a=%v: no mapping found", a)
		}
		if numeric.LessEq(opt.Cost.Latency, bound) != yes {
			t.Errorf("a=%v: reduction violated (latency %g, bound %g, partition %v)",
				a, opt.Cost.Latency, bound, yes)
		}
	}
}

// TestHardnessHeuristicGapLogic exercises the example's heuristic-gap
// measurement: heuristics never beat the exact optimum, and LPT stays
// within its proven 4/3 bound.
func TestHardnessHeuristicGapLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		pipe := workflow.RandomPipeline(rng, 2+rng.Intn(4), 12)
		plat := platform.Random(rng, 2+rng.Intn(3), 6)
		_, hc, err := heuristics.HetPipelinePeriodNoDP(pipe, plat)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(pipe, plat, false)
		if !ok {
			continue
		}
		if numeric.Less(hc.Period, opt.Cost.Period) {
			t.Errorf("heuristic beats the exact optimum: %g < %g", hc.Period, opt.Cost.Period)
		}
	}
	for trial := 0; trial < 10; trial++ {
		f := workflow.RandomFork(rng, 2+rng.Intn(3), 12)
		plat := platform.Homogeneous(2+rng.Intn(2), 1)
		_, hc, err := heuristics.HetForkLatencyLPT(f, plat)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.ForkLatency(f, plat, false)
		if !ok {
			continue
		}
		gap := hc.Latency / opt.Cost.Latency
		if numeric.Less(gap, 1) {
			t.Errorf("LPT beats the exact optimum: gap %g", gap)
		}
		if gap > 4.0/3+1e-9 {
			t.Errorf("LPT exceeded its 4/3 bound: gap %g", gap)
		}
	}
}
