package main

import (
	"testing"

	"repliflow/internal/fullmodel"
)

// TestCommunicationLogic exercises the example's fullmodel sweep: with
// zero data the optimum splits one stage per processor (period 8), and
// large transfers collapse the mapping to a single interval (period 32).
func TestCommunicationLogic(t *testing.T) {
	weights := []float64{8, 8, 8, 8}
	speeds := []float64{1, 1, 1, 1}
	solve := func(d float64) (intervals int, period float64) {
		data := []float64{0, d, d, d, 0}
		p := fullmodel.NewPipeline(weights, data)
		pl := fullmodel.Uniform(speeds, 1)
		m, c, err := fullmodel.HomPeriod(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		return m.Intervals(), c.Period
	}

	if iv, per := solve(0); iv != 4 || per != 8 {
		t.Errorf("zero data: %d intervals period %g, want 4 intervals period 8", iv, per)
	}
	if iv, per := solve(32); iv != 1 || per != 32 {
		t.Errorf("heavy data: %d intervals period %g, want 1 interval period 32", iv, per)
	}
	// The sweep is monotone: growing transfers never reduce the period.
	prev := -1.0
	for _, d := range []float64{0, 1, 2, 4, 8, 16, 32} {
		_, per := solve(d)
		if per < prev {
			t.Errorf("data %g: period %g below previous %g", d, per, prev)
		}
		prev = per
	}

	// Heterogeneous links, as the example solves them: the exact solver
	// must route the heavy transfer over the fast link.
	p := fullmodel.NewPipeline([]float64{4, 4}, []float64{0, 8, 0})
	pl := fullmodel.Uniform([]float64{1, 1}, 1)
	pl.Band[0][1] = 8
	pl.Band[1][0] = 0.5
	m, _, ok, err := fullmodel.ExactSolve(p, pl, true, 1e18)
	if err != nil || !ok {
		t.Fatalf("exact solve failed: ok=%v err=%v", ok, err)
	}
	if len(m.Alloc) == 2 && m.Alloc[0] == 1 && m.Alloc[1] == 0 {
		t.Error("optimal mapping routed the heavy transfer over the slow link")
	}
}
