// Communication costs change the optimal mapping.
//
// Sections 3.2-3.3 of the paper describe the general model with data sizes
// and link bandwidths (Equations (1) and (2)) before deliberately setting
// communications aside. This example uses the internal/fullmodel package —
// the executable form of those equations — to show the effect the paper
// anticipates: as the inter-stage data volume grows, the period-optimal
// interval mapping coarsens from one-stage-per-processor down to a single
// interval, and the latency of the period-optimal mapping follows suit.
package main

import (
	"fmt"
	"log"

	"repliflow/internal/fullmodel"
)

func main() {
	weights := []float64{8, 8, 8, 8}
	speeds := []float64{1, 1, 1, 1}
	fmt.Println("pipeline weights:", weights, "on 4 unit processors, bandwidth 1")
	fmt.Println()
	fmt.Printf("%-12s %-10s %-10s %-10s %s\n", "data size", "intervals", "period", "latency", "mapping (bounds)")

	for _, d := range []float64{0, 1, 2, 4, 8, 16, 32} {
		data := []float64{0, d, d, d, 0} // interior boundaries carry d, I/O is free
		p := fullmodel.NewPipeline(weights, data)
		pl := fullmodel.Uniform(speeds, 1)
		m, c, err := fullmodel.HomPeriod(p, pl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12g %-10d %-10g %-10g %v\n", d, m.Intervals(), c.Period, c.Latency, m.Bounds)
	}

	fmt.Println()
	fmt.Println("With zero data the optimum splits one stage per processor (period 8);")
	fmt.Println("large transfers make any split pay 2*d/b per boundary, collapsing the")
	fmt.Println("mapping to a single interval (period 32) — the behaviour the paper's")
	fmt.Println("simplified model abstracts away, and the reason its complexity results")
	fmt.Println("are a lower bound on the difficulty of the communication-aware problem.")

	// Heterogeneous links: route the heavy transfer over the fast link.
	fmt.Println()
	fmt.Println("heterogeneous links: stages (4,4) with an 8-unit transfer between them;")
	fmt.Println("link P1->P2 has bandwidth 8, P2->P1 only 0.5:")
	p := fullmodel.NewPipeline([]float64{4, 4}, []float64{0, 8, 0})
	pl := fullmodel.Uniform([]float64{1, 1}, 1)
	pl.Band[0][1] = 8
	pl.Band[1][0] = 0.5
	m, c, ok, err := fullmodel.ExactSolve(p, pl, true, 1e18)
	if err != nil || !ok {
		log.Fatal(err)
	}
	fmt.Printf("  optimal: bounds %v on processors %v, period %g latency %g\n",
		m.Bounds, m.Alloc, c.Period, c.Latency)
}
