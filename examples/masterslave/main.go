// Master-slave fork-join on a heterogeneous platform.
//
// Section 6.3 of the paper motivates fork-join graphs with the
// master-slave paradigm: a master stage scatters work to slaves
// (S1..Sn) and a join stage gathers and combines the results. This example
// schedules a homogeneous fork-join (identical slave tasks) onto a
// heterogeneous platform without data-parallelism — the "Poly (*)" cell of
// Table 1 solved by the Section 6.3 extension of Theorem 14 — and
// contrasts the optimal mapping with two naive strategies.
package main

import (
	"fmt"
	"log"

	"repliflow"
)

func main() {
	// Master scatter: 12 Mflop; 8 identical slave tasks of 20 Mflop;
	// gather/combine: 16 Mflop.
	fj := repliflow.HomogeneousForkJoin(12, 16, 8, 20)
	plat := repliflow.NewPlatform(6, 4, 2, 2, 1)

	fmt.Println("master-slave fork-join: root 12, 8 slaves x 20, join 16")
	fmt.Println("platform speeds:", plat.Speeds)
	fmt.Println()

	problem := repliflow.Problem{
		ForkJoin:  &fj,
		Platform:  plat,
		Objective: repliflow.MinLatency,
	}
	optimal, err := repliflow.Solve(problem, repliflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal latency mapping (%s, %s):\n  %v\n  period %g latency %g\n\n",
		optimal.Classification.Complexity, optimal.Method,
		optimal.ForkJoinMapping, optimal.Cost.Period, optimal.Cost.Latency)

	allLeaves := []int{0, 1, 2, 3, 4, 5, 6, 7}

	// Naive strategy 1: everything on the fastest node.
	allFastest := repliflow.ForkJoinMapping{Blocks: []repliflow.ForkJoinBlock{
		repliflow.NewForkJoinBlock(true, true, allLeaves, repliflow.Replicated, 0),
	}}
	c1, err := repliflow.EvalForkJoin(fj, plat, allFastest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive: all on fastest node:      period %-7g latency %g\n", c1.Period, c1.Latency)

	// Naive strategy 2: replicate the whole graph on every node.
	replicateAll := repliflow.ForkJoinMapping{Blocks: []repliflow.ForkJoinBlock{
		repliflow.NewForkJoinBlock(true, true, allLeaves, repliflow.Replicated, 0, 1, 2, 3, 4),
	}}
	c2, err := repliflow.EvalForkJoin(fj, plat, replicateAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive: replicate everywhere:     period %-7g latency %g\n", c2.Period, c2.Latency)
	fmt.Printf("optimal (Theorem 14 extension):  period %-7g latency %g\n\n", optimal.Cost.Period, optimal.Cost.Latency)

	// Bi-criteria: what latency must we pay to halve the naive period?
	problem.Objective = repliflow.PeriodUnderLatency
	fmt.Println("latency bound -> optimal period:")
	for _, bound := range []float64{optimal.Cost.Latency, 1.2 * optimal.Cost.Latency, 2 * optimal.Cost.Latency} {
		problem.Bound = bound
		sol, err := repliflow.Solve(problem, repliflow.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !sol.Feasible {
			fmt.Printf("  latency <= %-8.4g infeasible\n", bound)
			continue
		}
		fmt.Printf("  latency <= %-8.4g period %-8.4g %v\n", bound, sol.Cost.Period, sol.ForkJoinMapping)
	}
}
