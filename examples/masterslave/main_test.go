package main

import (
	"testing"

	"repliflow"
)

// TestMasterSlaveLogic exercises the example's fork-join schedule: the
// optimal Theorem 14 extension mapping must beat both naive strategies on
// latency, and the bi-criteria sweep must honour its bounds.
func TestMasterSlaveLogic(t *testing.T) {
	fj := repliflow.HomogeneousForkJoin(12, 16, 8, 20)
	plat := repliflow.NewPlatform(6, 4, 2, 2, 1)

	problem := repliflow.Problem{
		ForkJoin:  &fj,
		Platform:  plat,
		Objective: repliflow.MinLatency,
	}
	optimal, err := repliflow.Solve(problem, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !optimal.Feasible || !optimal.Exact {
		t.Fatalf("optimal solve not exact-feasible: %v", optimal)
	}

	allLeaves := []int{0, 1, 2, 3, 4, 5, 6, 7}
	allFastest := repliflow.ForkJoinMapping{Blocks: []repliflow.ForkJoinBlock{
		repliflow.NewForkJoinBlock(true, true, allLeaves, repliflow.Replicated, 0),
	}}
	c1, err := repliflow.EvalForkJoin(fj, plat, allFastest)
	if err != nil {
		t.Fatal(err)
	}
	replicateAll := repliflow.ForkJoinMapping{Blocks: []repliflow.ForkJoinBlock{
		repliflow.NewForkJoinBlock(true, true, allLeaves, repliflow.Replicated, 0, 1, 2, 3, 4),
	}}
	c2, err := repliflow.EvalForkJoin(fj, plat, replicateAll)
	if err != nil {
		t.Fatal(err)
	}
	if optimal.Cost.Latency > c1.Latency || optimal.Cost.Latency > c2.Latency {
		t.Errorf("optimal latency %g worse than a naive strategy (%g, %g)",
			optimal.Cost.Latency, c1.Latency, c2.Latency)
	}

	// Bi-criteria sweep of the example.
	problem.Objective = repliflow.PeriodUnderLatency
	for _, bound := range []float64{optimal.Cost.Latency, 1.2 * optimal.Cost.Latency, 2 * optimal.Cost.Latency} {
		problem.Bound = bound
		sol, err := repliflow.Solve(problem, repliflow.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Feasible && sol.Cost.Latency > bound+1e-9 {
			t.Errorf("latency bound %g violated: latency %g", bound, sol.Cost.Latency)
		}
	}
}
