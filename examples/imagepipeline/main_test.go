package main

import (
	"testing"

	"repliflow"
	"repliflow/internal/sim"
)

// TestImagePipelineLogic exercises the example's solve-sweep-simulate
// flow: the mono-criterion anchors solve, the bi-criteria sweep between
// them is feasible and monotone, and the simulator confirms the analytic
// period of the throughput-optimal mapping.
func TestImagePipelineLogic(t *testing.T) {
	pipe := repliflow.NewPipeline(80, 20, 35, 15, 10)
	plat := repliflow.NewPlatform(4, 4, 1, 1, 1, 1)
	problem := repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
	}

	problem.Objective = repliflow.MinPeriod
	fastest, err := repliflow.Solve(problem, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	problem.Objective = repliflow.MinLatency
	snappiest, err := repliflow.Solve(problem, repliflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fastest.Feasible || !snappiest.Feasible {
		t.Fatal("anchor solves infeasible")
	}
	if fastest.Cost.Period > snappiest.Cost.Period {
		t.Errorf("throughput anchor period %g exceeds latency anchor period %g",
			fastest.Cost.Period, snappiest.Cost.Period)
	}
	if snappiest.Cost.Latency > fastest.Cost.Latency {
		t.Errorf("latency anchor latency %g exceeds throughput anchor latency %g",
			snappiest.Cost.Latency, fastest.Cost.Latency)
	}

	// The example's sweep between the anchors.
	lo, hi := fastest.Cost.Period, snappiest.Cost.Period
	problem.Objective = repliflow.LatencyUnderPeriod
	for i := 0; i <= 8; i++ {
		problem.Bound = lo + (hi-lo)*float64(i)/8
		sol, err := repliflow.Solve(problem, repliflow.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Feasible && sol.Cost.Period > problem.Bound+1e-9 {
			t.Errorf("bound %g violated: period %g", problem.Bound, sol.Cost.Period)
		}
	}

	// Simulator validation, as the example performs it.
	tr, err := sim.SimulatePipeline(pipe, plat, *fastest.PipelineMapping, sim.Arrivals(2000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rel := tr.SteadyStatePeriod() / fastest.Cost.Period; rel < 0.98 || rel > 1.02 {
		t.Errorf("simulated period %g diverges from analytic %g",
			tr.SteadyStatePeriod(), fastest.Cost.Period)
	}
}
