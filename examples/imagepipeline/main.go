// Image-processing pipeline on a heterogeneous cluster.
//
// Section 1 of the paper motivates pipelines with image processing: a
// stream of images traverses filtering, feature extraction, classification
// and encoding stages. This example maps such a pipeline onto a
// heterogeneous platform (two fast nodes, four slow ones), sweeps the
// period bound to chart the full latency/throughput trade-off, and checks
// the analytic costs of the chosen mapping against the discrete-event
// simulator.
package main

import (
	"fmt"
	"log"

	"repliflow"
	"repliflow/internal/core"
	"repliflow/internal/sim"
)

func main() {
	// Stage weights in Mflop per image: denoise, segment, extract,
	// classify, encode. The heavy front stage is data-parallelizable.
	pipe := repliflow.NewPipeline(80, 20, 35, 15, 10)
	plat := repliflow.NewPlatform(4, 4, 1, 1, 1, 1)

	fmt.Println("image pipeline:", pipe.Weights, "on speeds", plat.Speeds)
	fmt.Println()

	problem := repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
	}

	// Mono-criterion anchors.
	problem.Objective = repliflow.MinPeriod
	fastest, err := repliflow.Solve(problem, repliflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	problem.Objective = repliflow.MinLatency
	snappiest, err := repliflow.Solve(problem, repliflow.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best throughput: period %-6g latency %-6g  %v\n",
		fastest.Cost.Period, fastest.Cost.Latency, fastest.PipelineMapping)
	fmt.Printf("best response:   period %-6g latency %-6g  %v\n\n",
		snappiest.Cost.Period, snappiest.Cost.Latency, snappiest.PipelineMapping)

	// Sweep the period bound between the two anchors: the Pareto frontier
	// of the deployment.
	fmt.Println("Pareto sweep (period bound -> optimal latency):")
	lo, hi := fastest.Cost.Period, snappiest.Cost.Period
	problem.Objective = repliflow.LatencyUnderPeriod
	prevLatency := -1.0
	for i := 0; i <= 8; i++ {
		problem.Bound = lo + (hi-lo)*float64(i)/8
		sol, err := repliflow.Solve(problem, repliflow.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !sol.Feasible {
			continue
		}
		if sol.Cost.Latency == prevLatency {
			continue // same frontier point
		}
		prevLatency = sol.Cost.Latency
		fmt.Printf("  period <= %-7.4g latency %-7.4g %v\n", problem.Bound, sol.Cost.Latency, sol.PipelineMapping)
	}

	// Validate the throughput-optimal mapping dynamically.
	fmt.Println("\nsimulating the throughput-optimal mapping over 2000 images:")
	sat, err := sim.SimulatePipeline(pipe, plat, *fastest.PipelineMapping, sim.Arrivals(2000, 0))
	if err != nil {
		log.Fatal(err)
	}
	paced, err := sim.SimulatePipeline(pipe, plat, *fastest.PipelineMapping, sim.Arrivals(2000, fastest.Cost.Period))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  analytic period %g, simulated steady period %.6g\n", fastest.Cost.Period, sat.SteadyStatePeriod())
	fmt.Printf("  analytic latency %g, simulated max latency %.6g\n", fastest.Cost.Latency, paced.MaxLatency())

	// How was this instance classified?
	cl, err := core.Classify(core.Problem{
		Pipeline: &pipe, Platform: plat, AllowDataParallel: true, Objective: core.MinPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable 1 cell: %s (%s) — solved %s\n", cl.Complexity, cl.Source, fastest.Method)
}
