// Benchmark harness regenerating every artifact of Benoit & Robert
// (RR-6308). Each benchmark corresponds to an entry of the experiment
// index in DESIGN.md:
//
//	T1  BenchmarkTable1_*          — one per Table 1 (platform, graph, model) cell
//	E2  BenchmarkSection2Example   — the worked example
//	F1  BenchmarkFigure1Pipeline   — Figure 1 construction/rendering
//	F2  BenchmarkFigure2Fork       — Figure 2 construction/rendering
//	L1  BenchmarkLemma1            — no data-par needed for period on hom platforms
//	L2  BenchmarkLemma2            — no replication needed for latency
//	X1  BenchmarkForkJoin          — Section 6.3 extension
//	R*  BenchmarkReduction_*       — the five NP-hardness reductions
//	A1  BenchmarkAblation*         — design-choice ablations
//	A2  BenchmarkSimValidation     — simulator vs analytic model
//
// Benchmarks assert correctness (b.Fatal on mismatch) while measuring the
// solver cost, so `go test -bench=. -benchmem` doubles as an experiment
// run.
package repliflow_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/chains"
	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/exhaustive"
	"repliflow/internal/forkalgo"
	"repliflow/internal/fullmodel"
	"repliflow/internal/heuristics"
	"repliflow/internal/mapping"
	"repliflow/internal/nph"
	"repliflow/internal/numeric"
	"repliflow/internal/pipealgo"
	"repliflow/internal/platform"
	"repliflow/internal/sim"
	"repliflow/internal/spdecomp"
	"repliflow/internal/table"
	"repliflow/internal/workflow"
)

// ---------------------------------------------------------------------------
// T1: Table 1, one benchmark per (platform, graph, model) cell. Each
// iteration verifies all three objectives of the cell on fresh random
// instances.

func benchmarkTable1Cell(b *testing.B, platHom bool, graph table.GraphRow, withDP bool) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, obj := range []core.Objective{core.MinPeriod, core.MinLatency, core.LatencyUnderPeriod} {
			cell := table.Cell{PlatformHom: platHom, Graph: graph, WithDP: withDP, Objective: obj}
			ev := table.VerifyCell(rng, cell, 1)
			if ev.Trials > 0 && ev.Agreements != ev.Trials {
				// On NP-hard bounded-objective cells the forced heuristic
				// may report feasibility false negatives (documented
				// behaviour, flagged by Solution.Exact == false).
				if !(ev.Classification.Complexity == core.NPHard && obj == core.LatencyUnderPeriod) {
					b.Fatalf("%s: %d/%d verified", cell, ev.Agreements, ev.Trials)
				}
			}
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for _, platHom := range []bool{true, false} {
		for _, graph := range []table.GraphRow{table.HomPipeline, table.HetPipeline, table.HomFork, table.HetFork} {
			for _, withDP := range []bool{false, true} {
				plat := "HetPlatform"
				if platHom {
					plat = "HomPlatform"
				}
				model := "NoDP"
				if withDP {
					model = "DP"
				}
				name := fmt.Sprintf("%s/%s/%s", plat, sanitize(string(graph)), model)
				b.Run(name, func(b *testing.B) {
					benchmarkTable1Cell(b, platHom, graph, withDP)
				})
			}
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '.':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// E2: the Section 2 worked example.

func BenchmarkSection2Example(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := table.Section2Report()
		for _, r := range rows {
			if !r.Match && r.Note == "" {
				b.Fatalf("%s: unexpected mismatch", r.ID)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// F1/F2: the application graphs of Figures 1 and 2.

func BenchmarkFigure1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := workflow.NewPipeline(14, 4, 2, 4)
		if p.Render() == "" || p.TotalWork() != 24 {
			b.Fatal("figure 1 construction failed")
		}
	}
}

func BenchmarkFigure2Fork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := workflow.NewFork(2, 1, 3, 5)
		if f.Render() == "" || f.TotalWork() != 11 {
			b.Fatal("figure 2 construction failed")
		}
	}
}

// ---------------------------------------------------------------------------
// L1/L2: the structural lemmas, verified on random instances.

func BenchmarkLemma1(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(3)))
		with, _ := exhaustive.PipelinePeriod(p, pl, true)
		without, _ := exhaustive.PipelinePeriod(p, pl, false)
		if !numeric.Eq(with.Cost.Period, without.Cost.Period) {
			b.Fatalf("Lemma 1 violated: %v vs %v", with.Cost.Period, without.Cost.Period)
		}
	}
}

func BenchmarkLemma2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		opt, _ := exhaustive.PipelineLatency(p, pl, false)
		// Without data-parallelism the optimum is the fastest processor.
		want := p.TotalWork() / pl.MaxSpeed()
		if !numeric.Eq(opt.Cost.Latency, want) {
			b.Fatalf("Lemma 2 / Theorem 6 violated: %v vs %v", opt.Cost.Latency, want)
		}
	}
}

// ---------------------------------------------------------------------------
// X1: the Section 6.3 fork-join extension against exhaustive search.

func BenchmarkForkJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), rng.Intn(3), float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		res, err := forkalgo.HetHomForkJoinLatencyNoDP(fj, pl)
		if err != nil {
			b.Fatal(err)
		}
		opt, ok := exhaustive.ForkJoinLatency(fj, pl, false)
		if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
			b.Fatalf("fork-join extension diverges: %v vs %v", res.Cost.Latency, opt.Cost.Latency)
		}
	}
}

// ---------------------------------------------------------------------------
// R*: the NP-hardness reductions.

func BenchmarkReduction_Theorem5(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < b.N; i++ {
		a := []int{3 + rng.Intn(5), 5 + rng.Intn(5), 10 + rng.Intn(3), 1 + rng.Intn(2), 13}
		_, yes, err := nph.TwoPartition(a)
		if err != nil {
			b.Fatal(err)
		}
		p, pl, bound := nph.Theorem5Latency(a)
		opt, ok := exhaustive.PipelineLatency(p, pl, true)
		if !ok {
			b.Fatal("no mapping")
		}
		_ = yes
		_ = opt
		_ = bound
	}
}

func BenchmarkReduction_Theorem9(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ins := nph.RandomYesN3DM(rng, 2, 5)
	p, pl, bound, err := nph.Theorem9(ins)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok || numeric.Greater(opt.Cost.Period, bound) {
			b.Fatalf("yes-instance not mapped within period 1: %v", opt.Cost.Period)
		}
	}
}

func BenchmarkReduction_Theorem12(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		a := []int{1 + rng.Intn(9), 1 + rng.Intn(9), 1 + rng.Intn(9)}
		_, yes, _ := nph.TwoPartition(a)
		f, pl, bound := nph.Theorem12(a)
		opt, ok := exhaustive.ForkLatency(f, pl, false)
		if !ok || numeric.LessEq(opt.Cost.Latency, bound) != yes {
			b.Fatalf("Theorem 12 reduction violated on %v", a)
		}
	}
}

func BenchmarkReduction_Theorem13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := []int{5, 8, 3, 4, 6}
		_, yes, _ := nph.TwoPartition(a)
		f, pl, bound := nph.Theorem13Period(a)
		opt, ok := exhaustive.ForkPeriod(f, pl, true)
		if !ok || numeric.LessEq(opt.Cost.Period, bound) != yes {
			b.Fatal("Theorem 13 reduction violated")
		}
	}
}

func BenchmarkReduction_Theorem15(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < b.N; i++ {
		a := []int{1 + rng.Intn(9), 1 + rng.Intn(9), 1 + rng.Intn(9)}
		_, yes, _ := nph.TwoPartition(a)
		f, pl, bound := nph.Theorem15(a)
		opt, ok := exhaustive.ForkPeriod(f, pl, false)
		if !ok || numeric.LessEq(opt.Cost.Period, bound) != yes {
			b.Fatalf("Theorem 15 reduction violated on %v", a)
		}
	}
}

// ---------------------------------------------------------------------------
// A1: ablations — the paper's polynomial algorithms against exhaustive
// search and against the chains-to-chains baseline without replication.

// BenchmarkAblationTheorem7VsExhaustive contrasts the polynomial Theorem 7
// algorithm with exponential search on the same instances.
func BenchmarkAblationTheorem7VsExhaustive(b *testing.B) {
	p := workflow.HomogeneousPipeline(8, 3)
	pl := platform.New(5, 4, 3, 3, 2, 2, 1, 1)
	b.Run("Theorem7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipealgo.HetHomPipelinePeriodNoDP(p, pl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := exhaustive.PipelinePeriod(p, pl, false); !ok {
				b.Fatal("no mapping")
			}
		}
	})
}

// BenchmarkAblationReplicationVsChains measures what replication buys over
// the classic chains-to-chains mapping (one interval per processor, no
// replication) on a homogeneous platform: Theorem 1 reaches W/(p*s) while
// chains-to-chains is stuck at the bottleneck interval.
func BenchmarkAblationReplicationVsChains(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var sumGain float64
	var count int
	b.Run("Chains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := workflow.RandomPipeline(rng, 8, 9)
			if _, _, err := chains.DP(p.Weights, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Theorem1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := workflow.RandomPipeline(rng, 8, 9)
			pl := platform.Homogeneous(4, 1)
			res, err := pipealgo.HomPeriod(p, pl)
			if err != nil {
				b.Fatal(err)
			}
			_, chainVal, err := chains.DP(p.Weights, 4)
			if err != nil {
				b.Fatal(err)
			}
			if numeric.Greater(res.Cost.Period, chainVal) {
				b.Fatal("replication worse than chains-to-chains")
			}
			sumGain += chainVal / res.Cost.Period
			count++
		}
		if count > 0 {
			b.ReportMetric(sumGain/float64(count), "speedup")
		}
	})
}

// BenchmarkAblationHeuristicGap measures the heuristic/optimal ratio on
// the Theorem 9 NP-hard cell.
func BenchmarkAblationHeuristicGap(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	var worst, sum float64 = 1, 0
	var count int
	for i := 0; i < b.N; i++ {
		p := workflow.RandomPipeline(rng, 2+rng.Intn(4), 12)
		pl := platform.Random(rng, 2+rng.Intn(3), 6)
		_, hc, err := heuristics.HetPipelinePeriodNoDP(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok {
			continue
		}
		gap := hc.Period / opt.Cost.Period
		if numeric.Less(gap, 1) {
			b.Fatalf("heuristic beats optimum: gap %v", gap)
		}
		sum += gap
		count++
		if gap > worst {
			worst = gap
		}
	}
	if count > 0 {
		b.ReportMetric(sum/float64(count), "mean-gap")
		b.ReportMetric(worst, "worst-gap")
	}
}

// ---------------------------------------------------------------------------
// A2: simulator-vs-analytic validation.

func BenchmarkSimValidation(b *testing.B) {
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(2, 2, 1, 1)
	m := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2, 3),
	}}
	analytic, err := mapping.EvalPipeline(p, pl, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := sim.SimulatePipeline(p, pl, m, sim.Arrivals(1000, 0))
		if err != nil {
			b.Fatal(err)
		}
		if rel := tr.SteadyStatePeriod() / analytic.Period; rel < 0.98 || rel > 1.02 {
			b.Fatalf("simulated period %v diverges from analytic %v", tr.SteadyStatePeriod(), analytic.Period)
		}
	}
}

// ---------------------------------------------------------------------------
// Scaling benchmarks for the individual polynomial algorithms.

func BenchmarkTheorem3DP(b *testing.B) {
	for _, size := range []struct{ n, p int }{{4, 4}, {8, 8}, {16, 16}} {
		b.Run(fmt.Sprintf("n%d_p%d", size.n, size.p), func(b *testing.B) {
			p := workflow.HomogeneousPipeline(size.n, 5)
			pl := platform.Homogeneous(size.p, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pipealgo.HomLatencyDP(p, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTheorem7(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []struct{ n, p int }{{8, 4}, {16, 8}, {32, 16}} {
		b.Run(fmt.Sprintf("n%d_p%d", size.n, size.p), func(b *testing.B) {
			p := workflow.HomogeneousPipeline(size.n, 3)
			pl := platform.Random(rng, size.p, 9)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pipealgo.HetHomPipelinePeriodNoDP(p, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTheorem14(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	for _, size := range []struct{ n, p int }{{4, 4}, {8, 8}, {16, 12}} {
		b.Run(fmt.Sprintf("n%d_p%d", size.n, size.p), func(b *testing.B) {
			f := workflow.HomogeneousFork(5, size.n, 3)
			pl := platform.Random(rng, size.p, 9)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := forkalgo.HetHomForkLatencyNoDP(f, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChains(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := make([]float64, 64)
	for i := range a {
		a[i] = float64(1 + rng.Intn(99))
	}
	b.Run("DP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := chains.DP(a, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Nicol", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := chains.Nicol(a, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLocalSearch measures what hill climbing adds on top of
// the constructive chains+replication heuristic for the Theorem 9 cell.
func BenchmarkAblationLocalSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	var sumImprovement float64
	var count int
	for i := 0; i < b.N; i++ {
		p := workflow.RandomPipeline(rng, 3+rng.Intn(4), 12)
		pl := platform.Random(rng, 3+rng.Intn(3), 6)
		start, c0, err := heuristics.HetPipelinePeriodNoDPConstructive(p, pl)
		if err != nil {
			b.Fatal(err)
		}
		_, c1, err := heuristics.LocalSearchPipelinePeriod(p, pl, start)
		if err != nil {
			b.Fatal(err)
		}
		if numeric.Greater(c1.Period, c0.Period) {
			b.Fatal("local search worsened the period")
		}
		sumImprovement += c0.Period / c1.Period
		count++
	}
	if count > 0 {
		b.ReportMetric(sumImprovement/float64(count), "mean-improvement")
	}
}

// BenchmarkParetoFront measures the generic trade-off sweep on the
// Section 2 instance.
func BenchmarkParetoFront(b *testing.B) {
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(2, 2, 1, 1)
	pr := core.Problem{Pipeline: &p, Platform: pl, AllowDataParallel: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		front, err := core.ParetoFront(pr, core.Options{})
		if err != nil || len(front) == 0 || !core.FrontIsMonotone(front) {
			b.Fatalf("bad front: %v (err=%v)", len(front), err)
		}
	}
}

// BenchmarkFullModel exercises the communication-aware general model of
// Sections 3.2-3.3 (Equations (1) and (2)): the homogeneous DP against the
// exact solver.
func BenchmarkFullModel(b *testing.B) {
	weights := []float64{8, 3, 5, 2, 7}
	data := []float64{1, 4, 2, 6, 3, 1}
	p := fullmodel.NewPipeline(weights, data)
	pl := fullmodel.Uniform([]float64{2, 2, 2, 2}, 3)
	b.Run("HomDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := fullmodel.HomPeriod(p, pl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, ok, err := fullmodel.ExactSolve(p, pl, true, numeric.Inf); !ok || err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExhaustivePipeline(b *testing.B) {
	for _, p := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			pipe := workflow.NewPipeline(14, 4, 2, 4)
			pl := platform.Homogeneous(p, 1)
			for i := 0; i < b.N; i++ {
				if _, ok := exhaustive.PipelinePeriod(pipe, pl, true); !ok {
					b.Fatal("no mapping")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Engine benchmarks: the parallel/caching batch solver against the serial
// path. Results are recorded in BENCH_engine.json.

// engineBenchProblems builds a workload of distinct instances replicated
// `dup` times each — the repeated-scenario shape the engine's memoization
// cache is built for.
func engineBenchProblems(seed int64, distinct, dup int) []core.Problem {
	rng := rand.New(rand.NewSource(seed))
	base := make([]core.Problem, distinct)
	for i := range base {
		pr := core.Problem{
			AllowDataParallel: rng.Intn(2) == 0,
			Objective:         core.Objective(rng.Intn(2)), // MinPeriod / MinLatency
		}
		procs := 3 + rng.Intn(3)
		if rng.Intn(2) == 0 {
			pr.Platform = platform.Homogeneous(procs, float64(1+rng.Intn(3)))
		} else {
			pr.Platform = platform.Random(rng, procs, 5)
		}
		stages := 3 + rng.Intn(3)
		if rng.Intn(2) == 0 {
			g := workflow.RandomPipeline(rng, stages, 9)
			pr.Pipeline = &g
		} else {
			g := workflow.RandomFork(rng, stages, 9)
			pr.Fork = &g
		}
		base[i] = pr
	}
	problems := make([]core.Problem, 0, distinct*dup)
	for d := 0; d < dup; d++ {
		problems = append(problems, base...)
	}
	return problems
}

// BenchmarkEngineSolveBatch contrasts solving N instances serially with
// the engine's worker-pool + memoization batch path.
func BenchmarkEngineSolveBatch(b *testing.B) {
	problems := engineBenchProblems(15, 16, 4)
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, pr := range problems {
				if _, err := core.Solve(pr, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.SolveBatch(context.Background(), problems, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineParetoFront contrasts the serial candidate-period sweep
// with the engine-backed sweep (concurrent batches + monotonicity pruning
// on exactly-solved instances) on a heterogeneous 8-processor NP-hard
// pipeline instance — the acceptance benchmark of the engine refactor.
func BenchmarkEngineParetoFront(b *testing.B) {
	p := workflow.NewPipeline(14, 4, 2, 4, 7, 5, 3, 9)
	pl := platform.New(5, 4, 3, 3, 2, 2, 1, 1)
	pr := core.Problem{Pipeline: &p, Platform: pl, AllowDataParallel: true}

	var serialFront, engineFront []core.Solution
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			front, err := core.ParetoFront(pr, core.Options{})
			if err != nil || len(front) == 0 {
				b.Fatalf("bad front: %v (err=%v)", len(front), err)
			}
			serialFront = front
		}
	})
	b.Run("Engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			front, err := engine.ParetoFront(context.Background(), pr, core.Options{})
			if err != nil || len(front) == 0 {
				b.Fatalf("bad front: %v (err=%v)", len(front), err)
			}
			engineFront = front
		}
	})
	if serialFront != nil && engineFront != nil && !reflect.DeepEqual(serialFront, engineFront) {
		b.Fatal("engine front diverges from serial front")
	}
}

// BenchmarkSolveSingleLarge measures ONE big NP-hard exhaustive solve —
// not a batch — serial versus the intra-solve partitioned search
// (Options.Parallelism), on a 7-leaf fork over a heterogeneous
// 4-processor platform (the fork scan shards the exact serial workload,
// so the speedup tracks core count; the pipeline DP's full-table sweep
// does not). Parallel/-cpu N runs N workers sharing the atomic
// incumbent bound; at -cpu 1 both sub-benchmarks are the serial path
// (searchParallelism resolves -1 to one worker), so the bare-name
// baseline stays a GOMAXPROCS=1 measurement. The mapping is asserted
// byte-identical between the two paths — the determinism contract the
// parallel search is built around.
func BenchmarkSolveSingleLarge(b *testing.B) {
	f := workflow.NewFork(5, 7, 3, 9, 4, 6, 2, 8)
	pl := platform.New(5, 4, 3, 2)
	pr := core.Problem{Fork: &f, Platform: pl, AllowDataParallel: true, Objective: core.MinPeriod}
	opts := core.Options{MaxExhaustiveForkStages: 9, MaxExhaustiveForkProcs: pl.Processors()}

	var serial, parallel core.Solution
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(pr, opts)
			if err != nil || !sol.Feasible || !sol.Exact {
				b.Fatalf("bad solve: %+v (err=%v)", sol, err)
			}
			serial = sol
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		popts := opts
		popts.Parallelism = -1 // all CPUs of this -cpu run
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(pr, popts)
			if err != nil || !sol.Feasible || !sol.Exact {
				b.Fatalf("bad solve: %+v (err=%v)", sol, err)
			}
			parallel = sol
		}
	})
	if serial.ForkMapping != nil && parallel.ForkMapping != nil &&
		!reflect.DeepEqual(serial, parallel) {
		b.Fatal("parallel solve diverges from serial solve")
	}
}

// BenchmarkSolveSP contrasts the registry's two strategies for a
// series-parallel instance. Decomposed reduces the DAG onto a legacy
// cell (here: fork-join) and solves that cell exactly — the path
// core.Solve takes whenever the reduction succeeds. MonolithicAnytime
// runs the block-model budgeted search on the very same DAG without
// reducing — the path irreducible DAGs take under a budget. The
// decomposed solve is asserted exact, and the monolithic incumbent may
// never beat it (the legacy cell's replicated mappings are a superset
// of single-processor blocks), so the benchmark doubles as a
// correctness check on the SP pipeline.
func BenchmarkSolveSP(b *testing.B) {
	steps := []workflow.SPStep{{Name: "root", Weight: 5}}
	var after []string
	for i, w := range []float64{7, 3, 9, 4} {
		name := fmt.Sprintf("l%d", i)
		steps = append(steps, workflow.SPStep{Name: name, Weight: w, After: []string{"root"}})
		after = append(after, name)
	}
	steps = append(steps, workflow.SPStep{Name: "join", Weight: 2, After: after})
	g := workflow.NewSP(steps...)
	pl := platform.New(5, 4, 3, 2)
	pr := core.Problem{SP: &g, Platform: pl, Objective: core.MinPeriod}

	var decomposed core.Solution
	b.Run("Decomposed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(pr, core.Options{})
			if err != nil || !sol.Feasible || !sol.Exact ||
				sol.SPMapping == nil || sol.SPMapping.Reduced != workflow.KindForkJoin {
				b.Fatalf("bad solve: %+v (err=%v)", sol, err)
			}
			decomposed = sol
		}
	})
	b.Run("MonolithicAnytime", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blocks, cost, _, feasible, err := spdecomp.Budgeted(
				context.Background(), g, pl, spdecomp.Goal{}, 1, 2*time.Millisecond)
			if err != nil || !feasible || len(blocks) == 0 {
				b.Fatalf("bad budgeted solve: %v feasible=%v (err=%v)", cost, feasible, err)
			}
			if decomposed.Feasible && numeric.Less(cost.Period, decomposed.Cost.Period) {
				b.Fatalf("budgeted period %g beats the exact optimum %g", cost.Period, decomposed.Cost.Period)
			}
		}
	})
}

// irreducibleSP returns the fixed 8-step layered DAG with crossing
// dependencies used by the SP parallelism benchmarks. The crossings (d
// depends on both a and b, which have disjoint other successors) defeat
// the series/parallel reduction, so core.Solve must run the monolithic
// block enumeration — the path the sharded parallel search accelerates.
func irreducibleSP(b *testing.B) workflow.SP {
	g := workflow.NewSP(
		workflow.SPStep{Name: "a", Weight: 7},
		workflow.SPStep{Name: "b", Weight: 5},
		workflow.SPStep{Name: "c", Weight: 3, After: workflow.After("a")},
		workflow.SPStep{Name: "d", Weight: 9, After: workflow.After("a", "b")},
		workflow.SPStep{Name: "e", Weight: 4, After: workflow.After("b")},
		workflow.SPStep{Name: "f", Weight: 6, After: workflow.After("c", "d")},
		workflow.SPStep{Name: "g", Weight: 2, After: workflow.After("d", "e")},
		workflow.SPStep{Name: "h", Weight: 8, After: workflow.After("f", "g")},
	)
	if _, ok := spdecomp.Reduce(g); ok {
		b.Fatal("benchmark fixture reduced to a legacy kind; the SP block search would be bypassed")
	}
	return g
}

// BenchmarkSolveSPParallel measures ONE irreducible SP block enumeration
// — serial versus the sharded parallel search (Options.Parallelism) —
// mirroring BenchmarkSolveSingleLarge for the SP kind. At -cpu 1 both
// sub-benchmarks are the serial path (searchParallelism resolves -1 to
// one worker); at -cpu 4 the Parallel sub runs four workers sharing the
// atomic incumbent bound. The solutions are asserted byte-identical —
// the determinism contract of the sharded scan.
func BenchmarkSolveSPParallel(b *testing.B) {
	g := irreducibleSP(b)
	pl := platform.New(5, 4, 3, 2)
	pr := core.Problem{SP: &g, Platform: pl, Objective: core.MinPeriod}
	opts := core.Options{MaxExhaustiveForkStages: 9, MaxExhaustiveForkProcs: pl.Processors()}

	var serial, parallel core.Solution
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(pr, opts)
			if err != nil || !sol.Feasible || !sol.Exact || sol.SPMapping == nil {
				b.Fatalf("bad solve: %+v (err=%v)", sol, err)
			}
			serial = sol
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		popts := opts
		popts.Parallelism = -1 // all CPUs of this -cpu run
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(pr, popts)
			if err != nil || !sol.Feasible || !sol.Exact || sol.SPMapping == nil {
				b.Fatalf("bad solve: %+v (err=%v)", sol, err)
			}
			parallel = sol
		}
	})
	if serial.SPMapping != nil && parallel.SPMapping != nil &&
		!reflect.DeepEqual(serial, parallel) {
		b.Fatal("parallel SP solve diverges from serial solve")
	}
}

// BenchmarkCommPipelinePareto sweeps the full trade-off front of a
// heterogeneous communication-aware pipeline — the acceptance benchmark
// of the prepared comm solvers. Serial is the candidate-period sweep
// through core.ParetoFront (one cold solve per bound); Engine routes the
// sweep through the engine's prepared-solver pool, so the platform
// table, the interval-DP scratch and the candidate-period set are built
// once and every bound after the first is a warm solve. The fronts are
// asserted byte-identical.
func BenchmarkCommPipelinePareto(b *testing.B) {
	p := fullmodel.NewPipeline(
		[]float64{8, 3, 5, 2, 7, 4},
		[]float64{1, 4, 2, 6, 3, 2, 1},
	)
	pl := platform.New(5, 4, 3, 2, 2)
	pr := core.Problem{CommPipeline: &p, Bandwidth: &fullmodel.Bandwidth{Uniform: 2}, Platform: pl}

	var serialFront, engineFront []core.Solution
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			front, err := core.ParetoFront(pr, core.Options{})
			if err != nil || len(front) == 0 {
				b.Fatalf("bad front: %v (err=%v)", len(front), err)
			}
			serialFront = front
		}
	})
	b.Run("Engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			front, err := engine.ParetoFront(context.Background(), pr, core.Options{})
			if err != nil || len(front) == 0 {
				b.Fatalf("bad front: %v (err=%v)", len(front), err)
			}
			engineFront = front
		}
	})
	if serialFront != nil && engineFront != nil && !reflect.DeepEqual(serialFront, engineFront) {
		b.Fatal("engine comm front diverges from serial front")
	}
}
